// Crash-safety layer tests (docs/ROBUSTNESS.md): deterministic fault
// injection, the atomic write protocol, checkpoint serialization, and
// the kill-and-resume guarantee — a pipeline interrupted by an injected
// crash resumes to a bitwise-identical end model. Also the regression
// tests for the silent-corruption fixes this PR ships (mixed-width
// selection copies, NaN gradient scaling).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "nn/trainer.hpp"
#include "obs/metrics.hpp"
#include "scads/selection.hpp"
#include "taglets/checkpoint.hpp"
#include "taglets/controller.hpp"
#include "tensor/ops.hpp"
#include "test_support.hpp"
#include "util/atomic_io.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"

namespace taglets {
namespace {

namespace fs = std::filesystem;
using tensor::Tensor;
using util::fault::FaultInjected;

/// Fresh scratch directory under the system temp root; removed and
/// recreated per call so reruns never see stale artifacts.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("taglets_robust_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// RAII spec install: disarms fault injection when the test scope ends
/// even on assertion failure.
struct FaultSpec {
  explicit FaultSpec(const std::string& spec) {
    util::fault::set_spec_for_testing(spec);
  }
  ~FaultSpec() { util::fault::set_spec_for_testing(""); }
};

// ------------------------------------------------------ fault injection

TEST(FaultInjection, NthCallAtSiteFails) {
  FaultSpec spec("unit.site:3");
  EXPECT_NO_THROW(util::fault::maybe_fail("unit.site"));
  EXPECT_NO_THROW(util::fault::maybe_fail("other.site"));  // not armed
  EXPECT_NO_THROW(util::fault::maybe_fail("unit.site"));
  EXPECT_THROW(util::fault::maybe_fail("unit.site"), FaultInjected);
  // Only the Nth call fails; later calls proceed (crash-once model).
  EXPECT_NO_THROW(util::fault::maybe_fail("unit.site"));

  util::fault::reset_counters_for_testing();
  EXPECT_NO_THROW(util::fault::maybe_fail("unit.site"));
}

TEST(FaultInjection, MultiSiteSpecAndDefaults) {
  FaultSpec spec("a.site,b.site:2");
  EXPECT_THROW(util::fault::maybe_fail("a.site"), FaultInjected);  // nth=1
  EXPECT_NO_THROW(util::fault::maybe_fail("b.site"));
  EXPECT_THROW(util::fault::maybe_fail("b.site"), FaultInjected);
}

TEST(FaultInjection, MalformedSpecThrows) {
  EXPECT_THROW(util::fault::set_spec_for_testing(":3"),
               std::invalid_argument);
  EXPECT_THROW(util::fault::set_spec_for_testing("site:zero"),
               std::invalid_argument);
  EXPECT_THROW(util::fault::set_spec_for_testing("site:0"),
               std::invalid_argument);
  util::fault::set_spec_for_testing("");
  EXPECT_FALSE(util::fault::any_armed());
}

TEST(FaultInjection, RetryAbsorbsTransientFailures) {
  FaultSpec spec("retry.site:1");
  util::fault::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 0.0;
  int calls = 0;
  const int result = util::fault::retry_with_backoff("unit", policy, [&] {
    ++calls;
    util::fault::maybe_fail("retry.site");
    return 42;
  });
  EXPECT_EQ(result, 42);
  EXPECT_EQ(calls, 2);  // first attempt absorbed the injected fault
}

TEST(FaultInjection, RetryGivesUpAfterMaxAttempts) {
  FaultSpec spec("retry.site:1,retry.site2:1");
  util::fault::RetryPolicy policy;
  policy.max_attempts = 1;
  policy.initial_backoff_ms = 0.0;
  EXPECT_THROW(util::fault::retry_with_backoff(
                   "unit", policy,
                   [&] { util::fault::maybe_fail("retry.site"); }),
               FaultInjected);
}

TEST(FaultInjection, RetryNeverRetriesLogicErrors) {
  util::fault::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_ms = 0.0;
  int calls = 0;
  EXPECT_THROW(util::fault::retry_with_backoff(
                   "unit", policy,
                   [&]() -> int {
                     ++calls;
                     TAGLETS_CHECK(false, "a bug, not weather");
                     return 0;
                   }),
               util::ContractViolation);
  EXPECT_EQ(calls, 1);
}

// ------------------------------------------------------- atomic writes

TEST(AtomicIo, WritesAndReplaces) {
  const fs::path dir = scratch_dir("atomic");
  const fs::path target = dir / "artifact.txt";
  util::atomic_write_file(target.string(), "first");
  EXPECT_EQ(read_bytes(target), "first");
  util::atomic_write_file(target.string(), "second");
  EXPECT_EQ(read_bytes(target), "second");
  EXPECT_FALSE(fs::exists(util::atomic_temp_path(target.string())));
}

TEST(AtomicIo, InjectedOpenFailureLeavesNothing) {
  const fs::path dir = scratch_dir("atomic_open");
  const fs::path target = dir / "artifact.bin";
  FaultSpec spec("unit.write:1");  // call 1 = open/write half
  EXPECT_THROW(util::atomic_write_file(target.string(), "x", "unit.write"),
               FaultInjected);
  EXPECT_FALSE(fs::exists(target));
  EXPECT_FALSE(fs::exists(util::atomic_temp_path(target.string())));
}

TEST(AtomicIo, InjectedRenameFailurePreservesOldFile) {
  const fs::path dir = scratch_dir("atomic_rename");
  const fs::path target = dir / "artifact.bin";
  util::atomic_write_file(target.string(), "old", "unit.write");
  FaultSpec spec("unit.write:2");  // call 2 = temp complete, rename lost
  EXPECT_THROW(util::atomic_write_file(target.string(), "new", "unit.write"),
               FaultInjected);
  EXPECT_EQ(read_bytes(target), "old");  // never a torn file
  EXPECT_FALSE(fs::exists(util::atomic_temp_path(target.string())));
}

TEST(AtomicIo, WriterExceptionCleansUpTemp) {
  const fs::path dir = scratch_dir("atomic_writer");
  const fs::path target = dir / "artifact.bin";
  EXPECT_THROW(util::atomic_write_stream(
                   target.string(), "unit.write",
                   [](std::ostream& out) {
                     out << "partial";
                     throw std::runtime_error("writer failed mid-stream");
                   }),
               std::runtime_error);
  EXPECT_FALSE(fs::exists(target));
  EXPECT_FALSE(fs::exists(util::atomic_temp_path(target.string())));
}

// ------------------------------------------- checkpoint serialization

scads::Selection make_selection() {
  const auto task = taglets::testing::small_task(/*shots=*/1);
  scads::SelectionConfig config;
  config.seed = 77;
  return scads::select_auxiliary(taglets::testing::small_scads(), task,
                                 config);
}

TEST(CheckpointSerialization, SelectionRoundTripsBitwise) {
  const scads::Selection original = make_selection();
  ASSERT_GT(original.data.size(), 0u);

  std::ostringstream first;
  scads::write_selection(first, original);
  std::istringstream in(first.str());
  const scads::Selection loaded = scads::read_selection(in);

  EXPECT_EQ(loaded.data.name, original.data.name);
  EXPECT_EQ(loaded.data.labels, original.data.labels);
  EXPECT_EQ(loaded.data.class_names, original.data.class_names);
  EXPECT_EQ(loaded.data.class_concepts, original.data.class_concepts);
  EXPECT_EQ(loaded.selected_concepts, original.selected_concepts);
  EXPECT_EQ(loaded.source_target_class, original.source_target_class);
  EXPECT_EQ(loaded.similarities, original.similarities);

  // Re-serializing the loaded copy reproduces the exact bytes: the
  // round trip is lossless down to the float payload.
  std::ostringstream second;
  scads::write_selection(second, loaded);
  EXPECT_EQ(first.str(), second.str());
}

TEST(CheckpointSerialization, SelectionRejectsCorruptStream) {
  std::istringstream bad_magic("NOPE....");
  EXPECT_THROW(scads::read_selection(bad_magic), std::runtime_error);

  std::ostringstream full;
  scads::write_selection(full, make_selection());
  const std::string truncated = full.str().substr(0, full.str().size() / 2);
  std::istringstream in(truncated);
  EXPECT_THROW(scads::read_selection(in), std::runtime_error);
}

TEST(CheckpointSerialization, TagletRoundTripsBitwise) {
  auto& zoo = taglets::testing::small_zoo();
  const backbone::Pretrained& phi = zoo.get(backbone::Kind::kRn50S);
  util::Rng rng(31);
  modules::Taglet taglet("round-trip",
                         nn::Classifier(phi.encoder, phi.feature_dim, 10, rng));

  std::ostringstream first;
  taglet.save(first);
  std::istringstream in(first.str());
  modules::Taglet loaded = modules::Taglet::load(in);
  EXPECT_EQ(loaded.name(), "round-trip");

  std::ostringstream second;
  loaded.save(second);
  EXPECT_EQ(first.str(), second.str());

  // A reloaded taglet votes identically.
  Tensor x = Tensor::zeros(3, taglet.model().input_dim());
  util::Rng data_rng(5);
  for (float& v : x.data()) v = static_cast<float>(data_rng.normal());
  EXPECT_EQ(taglet.predict(x), loaded.predict(x));
}

TEST(CheckpointSerialization, TagletRejectsCorruptStream) {
  std::istringstream bad("XXXX");
  EXPECT_THROW(modules::Taglet::load(bad), std::runtime_error);
}

TEST(Checkpoint, ManifestGuardsConfigMismatch) {
  const fs::path dir = scratch_dir("manifest");
  { Checkpoint first(dir.string(), /*resume=*/false, "fingerprint-a"); }
  // Resuming with the same fingerprint is fine; a different one throws.
  EXPECT_NO_THROW(Checkpoint(dir.string(), /*resume=*/true, "fingerprint-a"));
  EXPECT_THROW(Checkpoint(dir.string(), /*resume=*/true, "fingerprint-b"),
               std::runtime_error);
  // A fresh (non-resume) run may repurpose the directory.
  EXPECT_NO_THROW(
      Checkpoint(dir.string(), /*resume=*/false, "fingerprint-b"));
}

TEST(Checkpoint, DisabledCheckpointIsInert) {
  const Checkpoint checkpoint;
  EXPECT_FALSE(checkpoint.enabled());
  EXPECT_FALSE(checkpoint.has_selection());
  EXPECT_NO_THROW(checkpoint.save_selection(scads::Selection{}));
}

// ---------------------------------------------------- kill and resume

SystemConfig resume_config(const std::string& dir) {
  SystemConfig config;
  config.module_names = {"transfer", "prototype"};
  config.train_seed = 23;
  config.epoch_scale = 0.15;
  config.checkpoint_dir = dir;
  return config;
}

TEST(Resume, InjectedCrashThenResumeIsBitwiseIdentical) {
  const auto task = taglets::testing::small_task(/*shots=*/2);
  Controller controller(&taglets::testing::small_scads(),
                        &taglets::testing::small_zoo());
  const fs::path dir = scratch_dir("resume");

  // Reference: the uninterrupted run (no checkpointing at all).
  SystemConfig plain = resume_config("");
  const fs::path reference = dir / "reference.bin";
  controller.run(task, plain).end_model.save(reference.string());

  for (const std::string& site :
       {std::string("pipeline.after_selection"),
        std::string("pipeline.after_training")}) {
    const fs::path ckpt_dir = dir / ("ckpt_" + site);
    SystemConfig config = resume_config(ckpt_dir.string());

    {
      FaultSpec spec(site + ":1");
      EXPECT_THROW(controller.run(task, config), FaultInjected) << site;
    }
    // The crash happened after at least one stage completed, so the
    // checkpoint directory holds whole (never partial) artifacts.
    EXPECT_TRUE(fs::exists(ckpt_dir / "selection.bin")) << site;
    for (const auto& entry : fs::directory_iterator(ckpt_dir)) {
      EXPECT_FALSE(entry.path().string().ends_with(".tmp")) << entry.path();
    }

    config.resume = true;
    SystemResult resumed = controller.run(task, config);
    const fs::path resumed_model = dir / ("resumed_" + site + ".bin");
    resumed.end_model.save(resumed_model.string());
    EXPECT_EQ(read_bytes(resumed_model), read_bytes(reference))
        << "resume after " << site << " diverged from the clean run";
  }

  // Resuming after the crash-free run short-circuits training entirely.
  const auto resumed_before = obs::MetricsRegistry::global()
                                  .counter("pipeline.modules_resumed_total")
                                  .value();
  SystemConfig config = resume_config((dir / "ckpt_pipeline.after_training").string());
  config.resume = true;
  controller.run(task, config);
  EXPECT_EQ(obs::MetricsRegistry::global()
                .counter("pipeline.modules_resumed_total")
                .value(),
            resumed_before + 2);
}

TEST(Resume, KillAtMidDagNodeBoundaryResumesBitwise) {
  // Crash inside the DAG's module fan-out (the 2nd taglet write, so
  // one module has already been checkpointed) and resume under the
  // graph plan. The resumed model must match a clean serial run bit
  // for bit — the strongest cross-plan resume statement we can make.
  const auto task = taglets::testing::small_task(/*shots=*/2);
  Controller controller(&taglets::testing::small_scads(),
                        &taglets::testing::small_zoo());
  const fs::path dir = scratch_dir("resume_middag");

  SystemConfig plain = resume_config("");
  plain.pipeline = PipelineMode::kSerial;
  const fs::path reference = dir / "reference.bin";
  controller.run(task, plain).end_model.save(reference.string());

  SystemConfig config = resume_config((dir / "ckpt").string());
  config.pipeline = PipelineMode::kGraph;
  {
    FaultSpec spec("checkpoint.taglet:2");
    EXPECT_THROW(controller.run(task, config), FaultInjected);
  }
  // One whole taglet artifact exists (whichever module won the race to
  // the first write), the other is absent — never partial, no temp.
  std::size_t taglet_files = 0;
  for (const auto& entry : fs::directory_iterator(dir / "ckpt")) {
    EXPECT_FALSE(entry.path().string().ends_with(".tmp")) << entry.path();
    if (entry.path().filename().string().starts_with("taglet_")) {
      ++taglet_files;
    }
  }
  EXPECT_EQ(taglet_files, 1u);
  EXPECT_TRUE(fs::exists(dir / "ckpt" / "selection.bin"));

  config.resume = true;
  SystemResult resumed = controller.run(task, config);
  const fs::path resumed_model = dir / "resumed.bin";
  resumed.end_model.save(resumed_model.string());
  EXPECT_EQ(read_bytes(resumed_model), read_bytes(reference))
      << "graph-plan resume diverged from the clean serial run";
}

TEST(Resume, EffectiveSelectionSeedFingerprintsIdentically) {
  // Regression: config_fingerprint recorded the raw selection seed, but
  // Controller::select substitutes train_seed when it is 0 — so a run
  // checkpointed with selection.seed=0 refused to resume under the
  // explicit spelling of the same behavior (and vice versa).
  const auto task = taglets::testing::small_task(/*shots=*/1);
  Controller controller(&taglets::testing::small_scads(),
                        &taglets::testing::small_zoo());
  const fs::path dir = scratch_dir("resume_seed0");

  SystemConfig implicit = resume_config((dir / "ckpt").string());
  implicit.module_names = {"transfer"};
  implicit.selection.seed = 0;  // "use train_seed"

  SystemConfig explicit_seed = implicit;
  explicit_seed.selection.seed = implicit.train_seed;

  EXPECT_EQ(config_fingerprint(implicit), config_fingerprint(explicit_seed));

  controller.run(task, implicit);
  // Resuming the same directory under the explicit spelling must be
  // accepted by the MANIFEST guard and short-circuit training.
  explicit_seed.resume = true;
  const auto resumed_before = obs::MetricsRegistry::global()
                                  .counter("pipeline.modules_resumed_total")
                                  .value();
  EXPECT_NO_THROW(controller.run(task, explicit_seed));
  EXPECT_EQ(obs::MetricsRegistry::global()
                .counter("pipeline.modules_resumed_total")
                .value(),
            resumed_before + 1);

  // A genuinely different selection seed still refuses.
  SystemConfig different = explicit_seed;
  different.selection.seed = implicit.train_seed + 1;
  EXPECT_THROW(controller.run(task, different), std::runtime_error);
}

TEST(ZooCache, InjectedCacheWriteFailureLeavesOldFileOrNone) {
  // The backbone cache write goes through the atomic protocol under
  // the "zoo.cache" site: a killed write leaves the previous file or
  // none (never a torn one), and never kills training — the cache is
  // an optimization.
  const fs::path dir = scratch_dir("zoo_cache");
  auto& world = taglets::testing::small_world();
  const auto pretrain = taglets::testing::small_pretrain_config();

  // Fault at call 1: open/write failure — no cache file at all.
  {
    FaultSpec spec("zoo.cache:1");
    backbone::Zoo zoo(&world, pretrain, dir.string());
    EXPECT_NO_THROW(zoo.get(backbone::Kind::kRn50S));
    EXPECT_TRUE(fs::is_empty(dir));
  }
  // Clean write from a fresh zoo (same fingerprint, so same path).
  backbone::Zoo warm(&world, pretrain, dir.string());
  warm.get(backbone::Kind::kRn50S);
  std::string cache_file;
  for (const auto& entry : fs::directory_iterator(dir)) {
    ASSERT_TRUE(entry.path().filename().string().starts_with("backbone_"))
        << entry.path();
    cache_file = entry.path().string();
  }
  ASSERT_FALSE(cache_file.empty());
  const std::string good_bytes = read_bytes(cache_file);

  // Fault at call 2: temp fully written, killed before the rename —
  // the old file survives byte for byte and the temp is cleaned up.
  {
    FaultSpec spec("zoo.cache:2");
    backbone::Zoo zoo(&world, pretrain, dir.string());
    EXPECT_NO_THROW(zoo.get(backbone::Kind::kRn50S));
  }
  EXPECT_EQ(read_bytes(cache_file), good_bytes);
  EXPECT_FALSE(fs::exists(util::atomic_temp_path(cache_file)));

  // A fresh zoo loads the surviving cache without pretraining.
  const auto pretrained_before = obs::MetricsRegistry::global()
                                     .counter("backbone.pretrained_total")
                                     .value();
  backbone::Zoo cold(&world, pretrain, dir.string());
  EXPECT_NO_THROW(cold.get(backbone::Kind::kRn50S));
  EXPECT_EQ(obs::MetricsRegistry::global()
                .counter("backbone.pretrained_total")
                .value(),
            pretrained_before);
}

TEST(Resume, CheckpointSaveRetriesAbsorbTransientFaults) {
  const auto task = taglets::testing::small_task(/*shots=*/1);
  Controller controller(&taglets::testing::small_scads(),
                        &taglets::testing::small_zoo());
  const fs::path dir = scratch_dir("resume_retry");
  SystemConfig config = resume_config((dir / "ckpt").string());
  config.module_names = {"transfer"};

  ASSERT_EQ(setenv("TAGLETS_IO_RETRIES", "3", 1), 0);
  FaultSpec spec("checkpoint.selection:1");
  EXPECT_NO_THROW(controller.run(task, config));
  ASSERT_EQ(unsetenv("TAGLETS_IO_RETRIES"), 0);
  EXPECT_TRUE(fs::exists(dir / "ckpt" / "selection.bin"));
}

// --------------------------------------- silent-corruption regressions

TEST(SelectionGuards, MixedWidthInstalledDatasetsAreRejected) {
  // Regression: select_auxiliary sized every row by the FIRST picked
  // example and std::copy'd each example unchecked — a wider example
  // from a second installed dataset wrote out of bounds.
  auto& world = taglets::testing::small_world();
  scads::Scads scads(world.graph(), world.taxonomy(),
                     world.scads_embeddings());
  util::Rng rng(9);
  scads.install_dataset(
      world.make_auxiliary_corpus(world.auxiliary_concepts(), 4, rng));

  synth::Dataset ragged =
      world.make_auxiliary_corpus(world.auxiliary_concepts(), 2, rng);
  ragged.name = "ragged";
  ragged.inputs =
      Tensor::zeros(ragged.inputs.rows(), ragged.inputs.cols() + 3);
  scads.install_dataset(ragged);

  const auto task = taglets::testing::small_task(/*shots=*/1);
  scads::SelectionConfig config;
  config.seed = 3;
  EXPECT_THROW(scads::select_auxiliary(scads, task, config),
               util::ContractViolation);
}

TEST(TrainerGuards, NonFiniteGradNormSkipsScaling) {
  // Regression: a NaN gradient norm produced a NaN scale that was
  // multiplied into every gradient (and then every parameter).
  nn::Parameter a(Tensor::from_vector({1.0f}));
  nn::Parameter b(Tensor::from_vector({2.0f}));
  a.grad[0] = std::numeric_limits<float>::quiet_NaN();
  b.grad[0] = 4.0f;
  std::vector<nn::Parameter*> params{&a, &b};
  EXPECT_FALSE(nn::clip_grad_norm(params, 1.0));
  EXPECT_EQ(b.grad[0], 4.0f);  // untouched, not scaled by NaN

  b.grad[0] = std::numeric_limits<float>::infinity();
  a.grad[0] = 1.0f;
  EXPECT_FALSE(nn::clip_grad_norm(params, 1.0));
  EXPECT_EQ(a.grad[0], 1.0f);

  // Finite norms still clip exactly as before.
  a.grad[0] = 3.0f;
  b.grad[0] = 4.0f;
  EXPECT_TRUE(nn::clip_grad_norm(params, 1.0));
  const double norm =
      std::sqrt(a.grad[0] * a.grad[0] + b.grad[0] * b.grad[0]);
  EXPECT_NEAR(norm, 1.0, 1e-5);
}

TEST(TrainerGuards, FitSkipsNonFiniteUpdatesAndCountsThem) {
  // NaN targets flow through matmuls on purpose here; the debug-build
  // finite-operand guard in tensor ops would (correctly) reject them
  // before the trainer's own skip logic — the thing under test — ever
  // runs. Pin the guard off and restore it on exit.
  const bool finite_checks_were_on = tensor::finite_checks_enabled();
  tensor::set_finite_checks(false);
  struct RestoreFiniteChecks {
    bool prev;
    ~RestoreFiniteChecks() { tensor::set_finite_checks(prev); }
  } restore{finite_checks_were_on};

  util::Rng rng(41);
  nn::Sequential encoder = nn::make_mlp({4, 6, 4}, rng);
  nn::Classifier model(encoder, 4, 3, rng);

  Tensor x = Tensor::zeros(8, 4);
  for (float& v : x.data()) v = static_cast<float>(rng.normal());
  Tensor targets = Tensor::zeros(8, 3);
  for (float& v : targets.data()) {
    v = std::numeric_limits<float>::quiet_NaN();
  }

  std::vector<float> before;
  for (nn::Parameter* p : model.parameters()) {
    before.insert(before.end(), p->value.data().begin(),
                  p->value.data().end());
  }
  const auto skipped_before = obs::MetricsRegistry::global()
                                  .counter("nn.skipped_nonfinite_steps")
                                  .value();

  nn::FitConfig config;
  config.epochs = 2;
  config.batch_size = 4;
  config.max_grad_norm = 5.0;
  nn::fit_soft(model, x, targets, config, rng);

  // Every update carried NaN gradients, so every step was skipped and
  // the parameters are bitwise untouched (previously they all went NaN).
  std::vector<float> after;
  for (nn::Parameter* p : model.parameters()) {
    after.insert(after.end(), p->value.data().begin(), p->value.data().end());
  }
  EXPECT_EQ(before, after);
  EXPECT_EQ(obs::MetricsRegistry::global()
                .counter("nn.skipped_nonfinite_steps")
                .value(),
            skipped_before + 4);  // 2 epochs x 2 batches
}

}  // namespace
}  // namespace taglets
