#include <gtest/gtest.h>
#include <algorithm>
#include <cmath>

#include "backbone/zoo.hpp"
#include "modules/fixmatch.hpp"
#include "modules/module.hpp"
#include "modules/multitask.hpp"
#include "modules/prototype.hpp"
#include "modules/registry.hpp"
#include "modules/transfer.hpp"
#include "modules/trgcn.hpp"
#include "modules/zsl_kg.hpp"
#include "nn/grad_check.hpp"
#include "nn/loss.hpp"
#include "nn/trainer.hpp"
#include "scads/selection.hpp"
#include "test_support.hpp"

namespace taglets::modules {
namespace {

using tensor::Tensor;

/// Shared per-binary context pieces: a task, a selection, and the
/// pretrained RN50-S backbone from the small zoo.
struct Fixture {
  synth::FewShotTask task = taglets::testing::small_task(/*shots=*/2);
  scads::Selection selection = [this] {
    scads::SelectionConfig config;
    config.seed = 3;
    config.images_per_concept = 6;
    return scads::select_auxiliary(taglets::testing::small_scads(), task,
                                   config);
  }();
  const backbone::Pretrained* backbone =
      &taglets::testing::small_zoo().get(backbone::Kind::kRn50S);

  ModuleContext context(double epoch_scale = 0.3) {
    ModuleContext ctx;
    ctx.task = &task;
    ctx.scads = &taglets::testing::small_scads();
    ctx.selection = &selection;
    ctx.backbone = backbone;
    ctx.train_seed = 11;
    ctx.epoch_scale = epoch_scale;
    return ctx;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

ZslKgEngine& test_engine() {
  static ZslKgEngine engine = [] {
    ZslKgEngine::Config config;
    config.epochs = 20;
    config.val_classes = 10;
    return ZslKgEngine(taglets::testing::small_zoo(), config);
  }();
  return engine;
}

void expect_valid_taglet(Taglet& taglet, const synth::FewShotTask& task) {
  Tensor proba = taglet.predict_proba(task.test_inputs);
  ASSERT_EQ(proba.rows(), task.test_inputs.rows());
  ASSERT_EQ(proba.cols(), task.num_classes());
  for (std::size_t i = 0; i < proba.rows(); ++i) {
    double sum = 0.0;
    for (float v : proba.row(i)) {
      ASSERT_GE(v, 0.0f);
      sum += v;
    }
    ASSERT_NEAR(sum, 1.0, 1e-4);
  }
}

// ------------------------------------------------------------- helpers

TEST(ModuleHelpers, ScaledEpochsFloorsAtOne) {
  ModuleContext ctx;
  ctx.epoch_scale = 0.01;
  EXPECT_EQ(scaled_epochs(10, ctx), 1u);
  ctx.epoch_scale = 1.0;
  EXPECT_EQ(scaled_epochs(10, ctx), 10u);
  ctx.epoch_scale = 2.0;
  EXPECT_EQ(scaled_epochs(10, ctx), 20u);
}

TEST(ModuleHelpers, ModuleRngDecorrelatedByName) {
  ModuleContext ctx;
  ctx.train_seed = 5;
  util::Rng a = module_rng(ctx, "transfer");
  util::Rng b = module_rng(ctx, "multitask");
  EXPECT_NE(a.next(), b.next());
  util::Rng a2 = module_rng(ctx, "transfer");
  EXPECT_EQ(util::Rng(module_rng(ctx, "transfer").next()).next(),
            util::Rng(a2.next()).next());
}

// ------------------------------------------------------------- registry

TEST(Registry, BuiltinsPresent) {
  auto registry = ModuleRegistry::with_builtins();
  for (const std::string& name : ModuleRegistry::default_lineup()) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_NE(registry.create(name), nullptr);
  }
  EXPECT_EQ(ModuleRegistry::default_lineup().size(), 4u);
}

TEST(Registry, CustomModuleRegistration) {
  class NullModule : public Module {
   public:
    std::string name() const override { return "null"; }
    Taglet train(const ModuleContext& context) const override {
      util::Rng rng(1);
      nn::Sequential encoder;
      encoder.add(std::make_unique<nn::Linear>(
          context.task->labeled_inputs.cols(), 4, rng));
      return Taglet("null", nn::Classifier(encoder, 4,
                                           context.task->num_classes(), rng));
    }
  };
  auto registry = ModuleRegistry::with_builtins();
  registry.register_module("null", [] { return std::make_unique<NullModule>(); });
  EXPECT_TRUE(registry.contains("null"));
  EXPECT_EQ(registry.create("null")->name(), "null");
  EXPECT_THROW(registry.create("missing"), std::invalid_argument);
  EXPECT_THROW(registry.register_module("x", nullptr), std::invalid_argument);
}

// --------------------------------------------------------------- trgcn

TEST(TrGcn, PredictDeterministic) {
  auto& world = taglets::testing::small_world();
  TrGcn::Config config;
  config.input_dim = world.config().word_dim;
  config.output_dim = 5;
  util::Rng rng(3);
  TrGcn gnn(config, rng);
  Tensor a = gnn.predict(world.graph(), world.scads_embeddings(), 10);
  Tensor b = gnn.predict(world.graph(), world.scads_embeddings(), 10);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  EXPECT_EQ(a.size(), 5u);
}

TEST(TrGcn, GradCheck) {
  auto& world = taglets::testing::small_world();
  TrGcn::Config config;
  config.input_dim = world.config().word_dim;
  config.hidden_dim = 8;
  config.output_dim = 4;
  config.max_neighbors = 6;
  util::Rng rng(5);
  TrGcn gnn(config, rng);

  // Central differences on fp32 with ReLU kinks are noisy for unlucky
  // centers; require that the *median* center checks out cleanly.
  Tensor target = Tensor::from_vector({0.5f, -0.25f, 1.0f, 0.0f});
  std::size_t clean = 0;
  const std::vector<graph::NodeId> centers{20, 50, 120};
  for (graph::NodeId center : centers) {
    auto loss_fn = [&] {
      Tensor out = gnn.predict(world.graph(), world.scads_embeddings(), center);
      return nn::mse(out, target).loss;
    };
    gnn.zero_grad();
    auto cache = gnn.forward(world.graph(), world.scads_embeddings(), center);
    auto loss = nn::mse(cache.output, target);
    gnn.backward(cache, loss.grad_logits);
    if (nn::max_param_grad_error(gnn.parameters(), loss_fn, 1e-2) < 5e-2) {
      ++clean;
    }
  }
  EXPECT_GE(clean, 2u);
}

TEST(TrGcn, SnapshotRestoreRoundTrip) {
  auto& world = taglets::testing::small_world();
  TrGcn::Config config;
  config.input_dim = world.config().word_dim;
  config.output_dim = 3;
  util::Rng rng(7);
  TrGcn gnn(config, rng);
  auto snapshot = gnn.snapshot();
  Tensor before = gnn.predict(world.graph(), world.scads_embeddings(), 5);
  // Perturb.
  for (auto* p : gnn.parameters()) {
    for (float& v : p->value.data()) v += 1.0f;
  }
  Tensor perturbed = gnn.predict(world.graph(), world.scads_embeddings(), 5);
  float diff = 0.0f;
  for (std::size_t i = 0; i < before.size(); ++i) {
    diff += std::abs(before[i] - perturbed[i]);
  }
  EXPECT_GT(diff, 0.0f);
  gnn.restore(snapshot);
  Tensor after = gnn.predict(world.graph(), world.scads_embeddings(), 5);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_FLOAT_EQ(before[i], after[i]);
  }
  EXPECT_THROW(gnn.restore({}), std::invalid_argument);
}

// --------------------------------------------------------- real modules

TEST(TransferModule, ProducesValidTaglet) {
  auto& f = fixture();
  TransferConfig config;
  config.aux_min_steps = 150;
  config.target_min_steps = 400;
  TransferModule module(config);
  Taglet taglet = module.train(f.context(/*epoch_scale=*/1.0));
  EXPECT_EQ(taglet.name(), "transfer");
  expect_valid_taglet(taglet, f.task);
  // Learns something: well above chance (10%) on the training shots.
  Tensor logits = taglet.model().logits(f.task.labeled_inputs, false);
  EXPECT_GT(nn::accuracy(logits, f.task.labeled_labels), 0.4);
}

TEST(TransferModule, RequiresContext) {
  TransferModule module;
  ModuleContext empty;
  EXPECT_THROW(module.train(empty), std::invalid_argument);
}

TEST(MultiTaskModule, ProducesValidTaglet) {
  auto& f = fixture();
  MultiTaskConfig config;
  config.min_steps = 100;
  MultiTaskModule module(config);
  Taglet taglet = module.train(f.context());
  EXPECT_EQ(taglet.name(), "multitask");
  expect_valid_taglet(taglet, f.task);
}

TEST(MultiTaskModule, LambdaZeroStillTrainsTarget) {
  auto& f = fixture();
  MultiTaskConfig config;
  config.lambda = 0.0;
  config.min_steps = 300;
  MultiTaskModule module(config);
  Taglet taglet = module.train(f.context(/*epoch_scale=*/1.0));
  Tensor logits = taglet.model().logits(f.task.labeled_inputs, false);
  EXPECT_GT(nn::accuracy(logits, f.task.labeled_labels), 0.25);
}

TEST(FixMatchModule, ProducesValidTaglet) {
  auto& f = fixture();
  FixMatchConfig config;
  config.pretrain_min_steps = 60;
  config.ssl_min_steps = 80;
  config.ssl_epochs = 2;
  FixMatchModule module(config);
  Taglet taglet = module.train(f.context());
  EXPECT_EQ(taglet.name(), "fixmatch");
  expect_valid_taglet(taglet, f.task);
}

TEST(FixMatchCore, RunsWithoutUnlabeledData) {
  auto& f = fixture();
  synth::FewShotTask task = f.task;
  task.unlabeled_inputs = Tensor::zeros(0, task.labeled_inputs.cols());
  task.unlabeled_true_labels.clear();
  FixMatchConfig config;
  config.ssl_epochs = 2;
  config.ssl_min_steps = 20;
  util::Rng rng(3);
  nn::Classifier model = fixmatch_train(task, f.backbone->encoder,
                                        f.backbone->feature_dim, config, rng);
  EXPECT_EQ(model.num_classes(), task.num_classes());
}

TEST(ZslKgEngine, PredictsHeadsForKnownClasses) {
  auto& f = fixture();
  ZslKgEngine& engine = test_engine();
  nn::Linear head = engine.predict_head(taglets::testing::small_scads(),
                                        f.task.class_names);
  EXPECT_EQ(head.out_features(), f.task.num_classes());
  EXPECT_EQ(head.in_features(), engine.feature_dim());
  EXPECT_GT(head.weight().value.squared_norm(), 0.0f);
  EXPECT_TRUE(std::isfinite(engine.best_validation_loss()));
}

TEST(ZslKgEngine, UnknownClassGetsZeroWeights) {
  ZslKgEngine& engine = test_engine();
  nn::Linear head = engine.predict_head(taglets::testing::small_scads(),
                                        {"totally_unknown_xyz"});
  EXPECT_FLOAT_EQ(head.weight().value.squared_norm(), 0.0f);
}

TEST(ZslKgModule, ZeroShotBeatsChance) {
  auto& f = fixture();
  ModuleContext ctx = f.context();
  ctx.zsl_engine = &test_engine();
  ZslKgModule module;
  Taglet taglet = module.train(ctx);
  EXPECT_EQ(taglet.name(), "zsl-kg");
  expect_valid_taglet(taglet, f.task);
  // Zero-shot: no target labels used, yet above the 10% chance level.
  Tensor logits = taglet.model().logits(f.task.test_inputs, false);
  EXPECT_GT(nn::accuracy(logits, f.task.test_labels), 0.12);
}

TEST(ZslKgModule, RequiresEngine) {
  auto& f = fixture();
  ZslKgModule module;
  ModuleContext ctx = f.context();
  ctx.zsl_engine = nullptr;
  EXPECT_THROW(module.train(ctx), std::invalid_argument);
}

TEST(Modules, AuxiliaryDataImprovesTransferOverFineTuneOnly) {
  // The paper's core mechanism (Sect. 4.4.2): the intermediate phase on
  // task-related auxiliary data improves few-shot accuracy.
  auto& f = fixture();
  TransferConfig with_aux;
  with_aux.aux_min_steps = 200;
  with_aux.target_min_steps = 150;
  TransferConfig without_aux = with_aux;
  without_aux.aux_epochs = 0;
  without_aux.aux_min_steps = 0;

  // Without auxiliary data: empty selection.
  ModuleContext ctx = f.context();
  scads::Selection empty;
  empty.data.inputs = Tensor::zeros(0, 0);
  ModuleContext ctx_no_aux = ctx;
  ctx_no_aux.selection = &empty;

  Taglet with = TransferModule(with_aux).train(ctx);
  Taglet without = TransferModule(without_aux).train(ctx_no_aux);
  const double acc_with = nn::evaluate_accuracy(
      with.model(), f.task.test_inputs, f.task.test_labels);
  const double acc_without = nn::evaluate_accuracy(
      without.model(), f.task.test_inputs, f.task.test_labels);
  EXPECT_GE(acc_with + 0.02, acc_without);  // not worse (small-world noise)
}


TEST(PrototypeModule, TrainingFreeTagletBeatsChance) {
  auto& f = fixture();
  PrototypeModule module;
  Taglet taglet = module.train(f.context());
  EXPECT_EQ(taglet.name(), "prototype");
  expect_valid_taglet(taglet, f.task);
  Tensor logits = taglet.model().logits(f.task.test_inputs, false);
  EXPECT_GT(nn::accuracy(logits, f.task.test_labels), 0.15);  // 10% chance
}

TEST(PrototypeModule, AuxWeightZeroUsesShotsOnly) {
  auto& f = fixture();
  PrototypeConfig config;
  config.aux_weight = 0.0;
  PrototypeModule module(config);
  Taglet taglet = module.train(f.context());
  expect_valid_taglet(taglet, f.task);
}

TEST(PrototypeModule, RegisteredButNotInDefaultLineup) {
  auto registry = ModuleRegistry::with_builtins();
  EXPECT_TRUE(registry.contains("prototype"));
  const auto& lineup = ModuleRegistry::default_lineup();
  EXPECT_EQ(std::count(lineup.begin(), lineup.end(), "prototype"), 0);
}

}  // namespace
}  // namespace taglets::modules
