// Tests for the observability layer (src/obs/): metrics registry
// correctness under concurrency, span nesting, trace JSON
// well-formedness, and the Controller::run stage spans. Run in the TSan
// CI job at TAGLETS_THREADS=4 like the other concurrency suites.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "taglets/controller.hpp"
#include "test_support.hpp"
#include "util/parallel.hpp"

namespace taglets::obs {
namespace {

// ------------------------------------------------- tiny JSON validator
// Enough of a recursive-descent JSON parser to assert exported trace
// and metrics documents are syntactically well-formed (the CI step
// additionally runs them through python -m json.tool).

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // {
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // [
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string s_;  // owned: callers may pass temporaries
  std::size_t pos_ = 0;
};

/// Restore the trace-enabled flag and drop this test's events on exit.
class TraceSandbox {
 public:
  TraceSandbox() : was_enabled_(trace_enabled()) { Tracer::global().clear(); }
  ~TraceSandbox() {
    set_trace_enabled(was_enabled_);
    Tracer::global().clear();
  }

 private:
  bool was_enabled_;
};

// ---------------------------------------------------------------- json

TEST(ObsJson, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(ObsJson, NumbersAreFiniteJson) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(std::nan("")), "0");
  JsonValidator v("[" + json_number(1.5) + "," + json_number(-2e9) + "]");
  EXPECT_TRUE(v.valid());
}

// ------------------------------------------------------------- metrics

TEST(Metrics, CounterConcurrentAddsAreExact) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("test.adds_total");
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::size_t i = 0; i < kPerThread; ++i) counter.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Metrics, HistogramConcurrentObservesAreExact) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("test.values", {1.0, 10.0, 100.0});
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        hist.observe(static_cast<double>((t + i) % 200));
      }
    });
  }
  for (auto& t : threads) t.join();
  const Histogram::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
  ASSERT_EQ(snap.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_GT(snap.counts.back(), 0u);  // values above 100 exist
  EXPECT_NEAR(snap.mean(), snap.sum / static_cast<double>(snap.count), 1e-9);
}

TEST(Metrics, HistogramBucketBoundariesAreUpperInclusiveLowerExclusive) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("test.bounds", {1.0, 2.0});
  hist.observe(1.0);   // first bucket (<= 1.0)
  hist.observe(1.5);   // second bucket
  hist.observe(2.5);   // overflow
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
}

TEST(Metrics, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge& gauge = registry.gauge("test.depth");
  gauge.set(4.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 4.0);
  gauge.add(-1.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
}

TEST(Metrics, SameNameReturnsSameMetric) {
  MetricsRegistry registry;
  Counter& a = registry.counter("test.shared");
  Counter& b = registry.counter("test.shared");
  EXPECT_EQ(&a, &b);
}

TEST(Metrics, KindCollisionThrows) {
  MetricsRegistry registry;
  registry.counter("test.name");
  EXPECT_THROW(registry.gauge("test.name"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("test.name", {1.0}), std::invalid_argument);
  registry.histogram("test.hist", {1.0, 2.0});
  EXPECT_THROW(registry.histogram("test.hist", {5.0}), std::invalid_argument);
}

TEST(Metrics, JsonSnapshotIsWellFormedAndComplete) {
  MetricsRegistry registry;
  registry.counter("alpha_total").add(3);
  registry.gauge("beta").set(1.25);
  registry.histogram("gamma_ms", {1.0, 5.0}).observe(2.0);
  const std::string json = registry.to_json();
  JsonValidator validator(json);
  EXPECT_TRUE(validator.valid()) << json;
  EXPECT_NE(json.find("\"alpha_total\":3"), std::string::npos);
  EXPECT_NE(json.find("\"beta\":1.25"), std::string::npos);
  EXPECT_NE(json.find("\"gamma_ms\""), std::string::npos);
  const std::string text = registry.to_text();
  EXPECT_NE(text.find("alpha_total 3"), std::string::npos);
}

TEST(Metrics, ResetZeroesEverythingButKeepsHandles) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("test.reset_total");
  Histogram& hist = registry.histogram("test.reset_ms", {1.0});
  counter.add(7);
  hist.observe(0.5);
  registry.reset_for_testing();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(hist.snapshot().count, 0u);
  counter.add();  // handle still live
  EXPECT_EQ(counter.value(), 1u);
}

TEST(Metrics, GlobalRegistryIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

TEST(Metrics, HistogramQuantileInterpolatesWithinBuckets) {
  Histogram::Snapshot snap;
  snap.bounds = {10.0, 20.0};
  snap.counts = {4, 4, 0};  // 2 bounds + overflow
  snap.count = 8;
  snap.sum = 100.0;
  // Rank 4 lands exactly at the top of the first bucket.
  EXPECT_DOUBLE_EQ(histogram_quantile(snap, 0.50), 10.0);
  // Rank 6 is halfway through the second bucket: 10 + 0.5 * (20 - 10).
  EXPECT_DOUBLE_EQ(histogram_quantile(snap, 0.75), 15.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(snap, 1.0), 20.0);
}

TEST(Metrics, HistogramQuantileClampsOverflowAndEmpty) {
  Histogram::Snapshot empty;
  EXPECT_DOUBLE_EQ(histogram_quantile(empty, 0.99), 0.0);

  // All mass in the +inf overflow bucket: the best finite statement is
  // "at least the largest finite bound".
  Histogram::Snapshot overflow;
  overflow.bounds = {10.0, 20.0};
  overflow.counts = {0, 0, 5};
  overflow.count = 5;
  overflow.sum = 500.0;
  EXPECT_DOUBLE_EQ(histogram_quantile(overflow, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(overflow, 0.99), 20.0);
}

TEST(Metrics, StructuredSnapshotToJsonIsWellFormed) {
  MetricsRegistry registry;
  registry.counter("snap.requests_total").add(12);
  registry.gauge("snap.depth").set(3.5);
  registry.histogram("snap.latency_ms", {1.0, 5.0}).observe(2.0);
  MetricsSnapshot snap = registry.snapshot("shard:g0");
  snap.meta.push_back({"endpoint", "unix:/tmp/x.sock"});
  snap.meta.push_back({"health", "alive"});

  EXPECT_EQ(snap.source, "shard:g0");
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "snap.requests_total");
  EXPECT_EQ(snap.counters[0].value, 12u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].snap.counts.size(),
            snap.histograms[0].snap.bounds.size() + 1);

  const std::string json = snap.to_json();
  JsonValidator validator(json);
  EXPECT_TRUE(validator.valid()) << json;
  EXPECT_NE(json.find("\"source\":\"shard:g0\""), std::string::npos);
  EXPECT_NE(json.find("\"health\":\"alive\""), std::string::npos);
  EXPECT_NE(json.find("\"snap.requests_total\":12"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

// ------------------------------------------------------------- tracing

TEST(Trace, DisabledRecordsNothing) {
  TraceSandbox sandbox;
  set_trace_enabled(false);
  {
    TAGLETS_TRACE_SCOPE("invisible", {{"k", "v"}});
  }
  EXPECT_TRUE(Tracer::global().snapshot().empty());
}

TEST(Trace, SpansNestWithCorrectDepthAndContainment) {
  TraceSandbox sandbox;
  set_trace_enabled(true);
  {
    TAGLETS_TRACE_SCOPE("outer");
    {
      TAGLETS_TRACE_SCOPE("middle", {{"k", "v"}});
      { TAGLETS_TRACE_SCOPE("inner"); }
    }
  }
  std::vector<TraceEvent> events = Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 3u);
  auto find = [&](const std::string& name) -> const TraceEvent& {
    auto it = std::find_if(events.begin(), events.end(),
                           [&](const TraceEvent& e) { return e.name == name; });
    EXPECT_NE(it, events.end()) << name;
    return *it;
  };
  const TraceEvent& outer = find("outer");
  const TraceEvent& middle = find("middle");
  const TraceEvent& inner = find("inner");
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(middle.depth, 1u);
  EXPECT_EQ(inner.depth, 2u);
  // All on the recording thread, nested by time.
  EXPECT_EQ(outer.tid, middle.tid);
  EXPECT_EQ(middle.tid, inner.tid);
  EXPECT_LE(outer.ts_us, middle.ts_us);
  EXPECT_LE(middle.ts_us, inner.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, middle.ts_us + middle.dur_us + 1e-3);
  EXPECT_LE(middle.ts_us + middle.dur_us, outer.ts_us + outer.dur_us + 1e-3);
  ASSERT_EQ(middle.attrs.size(), 1u);
  EXPECT_EQ(middle.attrs[0].first, "k");
  EXPECT_EQ(middle.attrs[0].second, "v");
}

TEST(Trace, ConcurrentSpansLandInPerThreadBuffers) {
  TraceSandbox sandbox;
  set_trace_enabled(true);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kSpansPerThread = 500;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (std::size_t i = 0; i < kSpansPerThread; ++i) {
        TAGLETS_TRACE_SCOPE("worker.span");
      }
    });
  }
  for (auto& t : threads) t.join();
  const std::vector<TraceEvent> events = Tracer::global().snapshot();
  EXPECT_EQ(events.size(), kThreads * kSpansPerThread);
  EXPECT_EQ(Tracer::global().dropped(), 0u);
}

TEST(Trace, RecordCompleteCapturesCrossThreadLifetime) {
  TraceSandbox sandbox;
  set_trace_enabled(true);
  const TraceClock::time_point start = TraceClock::now();
  const TraceClock::time_point end = start + std::chrono::milliseconds(3);
  Tracer::global().record_complete("serve.request", start, end,
                                   {{"id", "42"}});
  const std::vector<TraceEvent> events = Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "serve.request");
  EXPECT_NEAR(events[0].dur_us, 3000.0, 1.0);
  ASSERT_EQ(events[0].attrs.size(), 1u);
  EXPECT_EQ(events[0].attrs[0].second, "42");
}

TEST(Trace, ExportJsonIsWellFormedChromeTrace) {
  TraceSandbox sandbox;
  set_trace_enabled(true);
  {
    TAGLETS_TRACE_SCOPE("stage.a", {{"quote", "he said \"hi\"\n"}});
    TAGLETS_TRACE_SCOPE("stage.b");
  }
  const std::string json = trace_export_json();
  JsonValidator validator(json);
  EXPECT_TRUE(validator.valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("stage.a"), std::string::npos);
  EXPECT_NE(json.find("stage.b"), std::string::npos);
}

TEST(Trace, ParallelForRangesEmitsTaskBatchSpan) {
  TraceSandbox sandbox;
  set_trace_enabled(true);
  std::atomic<int> sum{0};
  util::parallel_for(64, [&sum](std::size_t) { sum.fetch_add(1); });
  EXPECT_EQ(sum.load(), 64);
  const std::vector<TraceEvent> events = Tracer::global().snapshot();
  const bool found =
      std::any_of(events.begin(), events.end(), [](const TraceEvent& e) {
        return e.name == "parallel.for_ranges";
      });
  // Serial pools (TAGLETS_THREADS=1) run inline without a span; the
  // span is required whenever the pool actually fans out.
  if (util::Parallel::global().threads() > 1) {
    EXPECT_TRUE(found);
  }
}

TEST(Trace, ExportCarriesRealPidAndProcessNameLane) {
  TraceSandbox sandbox;
  const std::string old_name = process_name();
  set_process_name("obs test proc");
  set_trace_enabled(true);
  {
    TAGLETS_TRACE_SCOPE("lane.span");
  }
  const std::string json = trace_export_json();
  set_process_name(old_name);

  JsonValidator validator(json);
  EXPECT_TRUE(validator.valid()) << json;
  // Chrome/Perfetto assign lanes by pid: the export must carry this
  // process's real pid (not a constant) plus a process_name metadata
  // event so merged multi-process traces stay readable.
  const std::string pid_field =
      "\"pid\":" + std::to_string(static_cast<long>(::getpid()));
  EXPECT_NE(json.find(pid_field), std::string::npos) << json;
  EXPECT_EQ(json.find("\"pid\":1,"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("obs test proc"), std::string::npos);
}

TEST(Trace, SnapshotPublishesBufferSpansGauge) {
  TraceSandbox sandbox;
  set_trace_enabled(true);
  constexpr std::size_t kSpans = 17;
  for (std::size_t i = 0; i < kSpans; ++i) {
    TAGLETS_TRACE_SCOPE("gauge.span");
  }
  const std::uint64_t dropped_before =
      MetricsRegistry::global().counter("obs.trace.dropped_total").value();
  const std::vector<TraceEvent> events = Tracer::global().snapshot();
  EXPECT_GE(events.size(), kSpans);
  // snapshot() publishes the live buffer size so fleet metric scrapes
  // can watch trace memory pressure per process.
  EXPECT_GE(MetricsRegistry::global().gauge("obs.trace.buffer_spans").value(),
            static_cast<double>(kSpans));
  // Nothing near the per-thread cap here, so the drop counter must not
  // have moved.
  EXPECT_EQ(
      MetricsRegistry::global().counter("obs.trace.dropped_total").value(),
      dropped_before);
  EXPECT_EQ(Tracer::global().dropped(), 0u);
}

// --------------------------------------------- pipeline instrumentation

TEST(Trace, ControllerRunEmitsStageAndModuleSpans) {
  TraceSandbox sandbox;
  set_trace_enabled(true);
  auto task = taglets::testing::small_task(/*shots=*/1);
  Controller controller(&taglets::testing::small_scads(),
                        &taglets::testing::small_zoo());
  SystemConfig config;
  config.train_seed = 5;
  config.epoch_scale = 0.25;
  config.module_names = {"transfer", "prototype"};  // no zsl engine needed
  // This test pins the serial plan: the stage-barrier span
  // "pipeline.module_training" only exists there (the graph plan has
  // per-node spans instead, covered below).
  config.pipeline = PipelineMode::kSerial;
  const SystemResult result = controller.run(task, config);
  EXPECT_EQ(result.taglets.size(), 2u);

  const std::vector<TraceEvent> events = Tracer::global().snapshot();
  auto count = [&](const std::string& name) {
    return std::count_if(events.begin(), events.end(),
                         [&](const TraceEvent& e) { return e.name == name; });
  };
  EXPECT_EQ(count("pipeline.run"), 1);
  EXPECT_EQ(count("pipeline.scads_selection"), 1);
  EXPECT_EQ(count("pipeline.module_training"), 1);
  EXPECT_EQ(count("pipeline.ensemble_vote"), 1);
  EXPECT_EQ(count("pipeline.distillation"), 1);
  EXPECT_EQ(count("module.train"), 2);
  EXPECT_EQ(count("scads.select"), 1);
  EXPECT_GE(count("nn.fit"), 1);

  // Every trained module appears with its name attribute.
  std::vector<std::string> trained;
  for (const TraceEvent& e : events) {
    if (e.name != "module.train") continue;
    for (const auto& [key, value] : e.attrs) {
      if (key == "module") trained.push_back(value);
    }
  }
  std::sort(trained.begin(), trained.end());
  EXPECT_EQ(trained, (std::vector<std::string>{"prototype", "transfer"}));

  // Pipeline counters moved on the shared registry.
  auto& registry = MetricsRegistry::global();
  EXPECT_GE(registry.counter("pipeline.runs_total").value(), 1u);
  EXPECT_GE(registry.counter("pipeline.modules_trained_total").value(), 2u);
  EXPECT_GE(registry.counter("scads.examples_selected_total").value(), 1u);
  EXPECT_GE(registry.counter("nn.epochs_total").value(), 1u);

  // The exported trace of a real pipeline run parses.
  JsonValidator validator(trace_export_json());
  EXPECT_TRUE(validator.valid());
}

TEST(Trace, ControllerGraphRunEmitsPerNodeSpans) {
  TraceSandbox sandbox;
  set_trace_enabled(true);
  auto task = taglets::testing::small_task(/*shots=*/1);
  Controller controller(&taglets::testing::small_scads(),
                        &taglets::testing::small_zoo());
  SystemConfig config;
  config.train_seed = 5;
  config.epoch_scale = 0.25;
  config.module_names = {"transfer", "prototype"};
  config.pipeline = PipelineMode::kGraph;
  auto& registry = MetricsRegistry::global();
  const std::uint64_t completed_before =
      registry.counter("pipeline.node.completed_total").value();
  const SystemResult result = controller.run(task, config);
  EXPECT_EQ(result.taglets.size(), 2u);

  const std::vector<TraceEvent> events = Tracer::global().snapshot();
  auto count = [&](const std::string& name) {
    return std::count_if(events.begin(), events.end(),
                         [&](const TraceEvent& e) { return e.name == name; });
  };
  EXPECT_EQ(count("pipeline.run"), 1);
  // One "pipeline.node" span per DAG node: backbone, selection, two
  // modules, ensemble, distill.
  EXPECT_EQ(count("pipeline.node"), 6);
  EXPECT_EQ(count("pipeline.scads_selection"), 1);
  EXPECT_EQ(count("pipeline.ensemble_vote"), 1);
  EXPECT_EQ(count("pipeline.distillation"), 1);
  EXPECT_EQ(count("module.train"), 2);

  // Each node span carries its name attribute.
  std::vector<std::string> nodes;
  for (const TraceEvent& e : events) {
    if (e.name != "pipeline.node") continue;
    for (const auto& [key, value] : e.attrs) {
      if (key == "node") nodes.push_back(value);
    }
  }
  std::sort(nodes.begin(), nodes.end());
  EXPECT_EQ(nodes, (std::vector<std::string>{
                       "backbone", "distill", "ensemble", "module:prototype",
                       "module:transfer", "selection"}));

  EXPECT_EQ(registry.counter("pipeline.node.completed_total").value(),
            completed_before + 6);
}

}  // namespace
}  // namespace taglets::obs
