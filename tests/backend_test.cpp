// Tests for the runtime-dispatched tensor backends (tensor/backend.hpp)
// and the int8 serving path (tensor/quant.hpp):
//  * registry / TAGLETS_TENSOR_BACKEND selection behaviour,
//  * the bitwise-determinism contract across backends, pinned over
//    adversarial shapes (k = 0, 1xN, odd tails, signed zeros,
//    denormals) and over the NaN zero-skip policy,
//  * property checks of every backend against a naive triple loop,
//  * quantization round-trip bounds, matmul_quant, the eval accuracy
//    gate, and TAGLETS_SERVE_INT8 at ServableModel::load.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "ensemble/servable.hpp"
#include "eval/harness.hpp"
#include "nn/sequential.hpp"
#include "tensor/backend.hpp"
#include "tensor/ops.hpp"
#include "tensor/quant.hpp"
#include "tensor/tensor.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace taglets::tensor {
namespace {

// RAII override of the active backend (mirrors the pattern the benches
// use for the thread pool).
class BackendOverride {
 public:
  explicit BackendOverride(const backend::Kernels* kernels)
      : prev_(backend::exchange_active(kernels)) {}
  ~BackendOverride() { backend::exchange_active(prev_); }
  BackendOverride(const BackendOverride&) = delete;
  BackendOverride& operator=(const BackendOverride&) = delete;

 private:
  const backend::Kernels* prev_;
};

std::vector<const backend::Kernels*> all_backends() {
  std::vector<const backend::Kernels*> out;
  for (const std::string& name : backend::available()) {
    out.push_back(backend::lookup(name));
  }
  return out;
}

Tensor random_tensor(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Tensor t = Tensor::zeros(rows, cols);
  for (float& x : t.data()) x = static_cast<float>(rng.normal());
  return t;
}

// Sprinkle the adversarial values the zero-skip / determinism contract
// cares about: exact zeros of both signs and denormals.
void poison(Tensor& t, util::Rng& rng) {
  auto d = t.data();
  for (std::size_t i = 0; i < d.size(); ++i) {
    const double u = rng.uniform();
    if (u < 0.15) {
      d[i] = 0.0f;
    } else if (u < 0.25) {
      d[i] = -0.0f;
    } else if (u < 0.32) {
      d[i] = std::numeric_limits<float>::denorm_min() *
             static_cast<float>(1 + (i % 7));
    }
  }
}

void expect_same_bits(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_TRUE(same_shape(a, b)) << what;
  auto ad = a.data();
  auto bd = b.data();
  for (std::size_t i = 0; i < ad.size(); ++i) {
    std::uint32_t ua = 0, ub = 0;
    std::memcpy(&ua, &ad[i], sizeof(ua));
    std::memcpy(&ub, &bd[i], sizeof(ub));
    ASSERT_EQ(ua, ub) << what << ": bit mismatch at index " << i << " ("
                      << ad[i] << " vs " << bd[i] << ")";
  }
}

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  Tensor c = Tensor::zeros(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += a.at(i, k) * b.at(k, j);
      c.at(i, j) = static_cast<float>(s);
    }
  }
  return c;
}

void expect_close(const Tensor& a, const Tensor& b, float tol = 1e-4f) {
  ASSERT_TRUE(same_shape(a, b))
      << a.shape_string() << " vs " << b.shape_string();
  auto ad = a.data();
  auto bd = b.data();
  for (std::size_t i = 0; i < ad.size(); ++i) {
    ASSERT_NEAR(ad[i], bd[i], tol) << "at index " << i;
  }
}

// ---------------------------------------------------------- registry

TEST(BackendRegistry, ScalarAlwaysAvailable) {
  const auto names = backend::available();
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.front(), "scalar");
  EXPECT_NE(backend::lookup("scalar"), nullptr);
  EXPECT_EQ(backend::lookup("scalar"), &backend::detail::scalar_kernels());
}

TEST(BackendRegistry, LookupUnknownReturnsNull) {
  EXPECT_EQ(backend::lookup("bogus"), nullptr);
  EXPECT_EQ(backend::lookup(""), nullptr);
}

TEST(BackendRegistry, ActiveNameIsListed) {
  const std::string name = backend::active_name();
  const auto names = backend::available();
  EXPECT_NE(std::find(names.begin(), names.end(), name), names.end());
}

TEST(BackendRegistry, ExchangeActiveOverridesAndRestores) {
  const backend::Kernels* scalar = backend::lookup("scalar");
  const backend::Kernels* prev = backend::exchange_active(scalar);
  EXPECT_EQ(backend::active_name(), "scalar");
  backend::exchange_active(prev);
}

TEST(BackendRegistry, EveryListedBackendHasCompleteKernelTable) {
  for (const backend::Kernels* k : all_backends()) {
    ASSERT_NE(k, nullptr);
    EXPECT_NE(k->name, nullptr);
    EXPECT_NE(k->gemm_rowblock, nullptr);
    EXPECT_NE(k->gemm_nt_row, nullptr);
    EXPECT_NE(k->axpy, nullptr);
    EXPECT_NE(k->axpy_q8, nullptr);
    EXPECT_NE(k->ew_add, nullptr);
    EXPECT_NE(k->ew_sub, nullptr);
    EXPECT_NE(k->ew_mul, nullptr);
    EXPECT_NE(k->ew_scale, nullptr);
    EXPECT_NE(k->softmax_row, nullptr);
  }
}

// ------------------------------------------- cross-backend determinism

struct Shape {
  std::size_t m, k, n;
};

// Odd tails, k = 0, 1xN, and widths straddling the 8/16-lane strips.
const Shape kAdversarialShapes[] = {
    {1, 1, 1},  {1, 0, 5},  {3, 0, 0},  {1, 7, 13},  {3, 17, 33},
    {5, 64, 31}, {2, 65, 16}, {4, 128, 40}, {7, 13, 17}, {2, 3, 129},
};

TEST(BackendDeterminism, MatmulBitwiseIdenticalAcrossBackends) {
  for (const Shape& s : kAdversarialShapes) {
    util::Rng rng(s.m * 131 + s.k * 17 + s.n);
    Tensor a = random_tensor(s.m, s.k, rng);
    Tensor b = random_tensor(s.k, s.n, rng);
    poison(a, rng);
    poison(b, rng);
    BackendOverride scalar(backend::lookup("scalar"));
    const Tensor ref = matmul(a, b);
    const Tensor ref_tn = matmul_tn(transpose(a), b);
    const Tensor ref_nt = matmul_nt(a, transpose(b));
    for (const backend::Kernels* k : all_backends()) {
      BackendOverride other(k);
      expect_same_bits(matmul(a, b), ref, k->name);
      expect_same_bits(matmul_tn(transpose(a), b), ref_tn, k->name);
      expect_same_bits(matmul_nt(a, transpose(b)), ref_nt, k->name);
    }
  }
}

TEST(BackendDeterminism, SoftmaxBitwiseIdenticalAcrossBackends) {
  util::Rng rng(99);
  Tensor logits = random_tensor(9, 33, rng);
  poison(logits, rng);
  // A row of equal values and a row with huge spread.
  for (std::size_t j = 0; j < logits.cols(); ++j) {
    logits.at(1, j) = 2.5f;
    logits.at(2, j) = (j % 2 != 0) ? 80.0f : -80.0f;
  }
  BackendOverride scalar(backend::lookup("scalar"));
  const Tensor ref = softmax(logits);
  for (const backend::Kernels* k : all_backends()) {
    BackendOverride other(k);
    expect_same_bits(softmax(logits), ref, k->name);
  }
}

TEST(BackendDeterminism, ElementwiseBitwiseIdenticalAcrossBackends) {
  util::Rng rng(7);
  Tensor a = random_tensor(5, 37, rng);
  Tensor b = random_tensor(5, 37, rng);
  poison(a, rng);
  poison(b, rng);
  BackendOverride scalar(backend::lookup("scalar"));
  const Tensor ref_add = add(a, b);
  const Tensor ref_sub = sub(a, b);
  const Tensor ref_mul = hadamard(a, b);
  const Tensor ref_scale = scale(a, 0.37f);
  Tensor ref_axpy = a;
  add_scaled_inplace(ref_axpy, b, -1.25f);
  for (const backend::Kernels* k : all_backends()) {
    BackendOverride other(k);
    expect_same_bits(add(a, b), ref_add, k->name);
    expect_same_bits(sub(a, b), ref_sub, k->name);
    expect_same_bits(hadamard(a, b), ref_mul, k->name);
    expect_same_bits(scale(a, 0.37f), ref_scale, k->name);
    Tensor axpy = a;
    add_scaled_inplace(axpy, b, -1.25f);
    expect_same_bits(axpy, ref_axpy, k->name);
  }
}

// The zero-skip decision must be identical in every backend: with the
// finiteness guard off, a zero in A must drop a NaN/Inf column of B
// (or propagate it) the same way everywhere. Pinned so a future
// backend can't make NaN propagation backend-dependent.
TEST(BackendDeterminism, ZeroSkipDropsNanIdenticallyAcrossBackends) {
  const bool prev_checks = set_finite_checks(false);
  {
    Tensor a = Tensor::zeros(2, 3);
    a.at(0, 0) = 0.0f;   // skips the NaN row of B
    a.at(0, 1) = 1.0f;
    a.at(0, 2) = -0.0f;  // -0.0 must skip exactly like +0.0
    a.at(1, 0) = 2.0f;   // hits the NaN row of B
    a.at(1, 1) = 1.0f;
    a.at(1, 2) = 0.5f;
    Tensor b = Tensor::full(3, 19, 1.0f);
    for (std::size_t j = 0; j < b.cols(); ++j) {
      b.at(0, j) = std::numeric_limits<float>::quiet_NaN();
      b.at(2, j) = std::numeric_limits<float>::infinity();
    }
    BackendOverride scalar(backend::lookup("scalar"));
    const Tensor ref = matmul(a, b);
    // Row 0 skipped both poisoned rows of B: finite everywhere.
    for (std::size_t j = 0; j < ref.cols(); ++j) {
      ASSERT_TRUE(std::isfinite(ref.at(0, j)));
      ASSERT_TRUE(std::isnan(ref.at(1, j)));
    }
    for (const backend::Kernels* k : all_backends()) {
      BackendOverride other(k);
      expect_same_bits(matmul(a, b), ref, k->name);
    }
  }
  set_finite_checks(prev_checks);
}

// A short training loop (forward, backward, SGD) must produce bitwise
// identical parameters on every backend — the ISSUE's training-path
// determinism requirement, end to end through nn::.
TEST(BackendDeterminism, TrainingLoopBitwiseIdenticalAcrossBackends) {
  auto run_training = [](const backend::Kernels* kernels) {
    BackendOverride ov(kernels);
    util::Rng rng(21);
    nn::Sequential encoder = nn::make_mlp({6, 8, 4}, rng);
    nn::Classifier clf(encoder, 4, 3, rng);
    util::Rng data_rng(5);
    Tensor x = random_tensor(12, 6, data_rng);
    std::vector<std::size_t> y(12);
    for (std::size_t i = 0; i < y.size(); ++i) y[i] = i % 3;
    for (int step = 0; step < 5; ++step) {
      Tensor logits = clf.logits(x, /*training=*/true);
      Tensor grad = softmax(logits);
      for (std::size_t i = 0; i < grad.rows(); ++i) {
        grad.at(i, y[i]) -= 1.0f;
      }
      clf.zero_grad();
      clf.backward(grad);
      for (nn::Parameter* p : clf.parameters()) {
        add_scaled_inplace(p->value, p->grad, -0.05f);
      }
    }
    std::vector<Tensor> out;
    for (nn::Parameter* p : clf.parameters()) out.push_back(p->value);
    out.push_back(clf.logits(x, /*training=*/false));
    return out;
  };
  const auto ref = run_training(backend::lookup("scalar"));
  for (const backend::Kernels* k : all_backends()) {
    const auto got = run_training(k);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      expect_same_bits(got[i], ref[i], k->name);
    }
  }
}

// ------------------------------------------------ property vs naive

TEST(BackendProperty, GemmMatchesNaiveTripleLoopOnRandomOddShapes) {
  util::Rng rng(123);
  for (const backend::Kernels* k : all_backends()) {
    BackendOverride ov(k);
    for (int trial = 0; trial < 12; ++trial) {
      const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform() * 34);
      const std::size_t kk = 1 + static_cast<std::size_t>(rng.uniform() * 34);
      const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform() * 34);
      Tensor a = random_tensor(m, kk, rng);
      Tensor b = random_tensor(kk, n, rng);
      const Tensor ref = naive_matmul(a, b);
      expect_close(matmul(a, b), ref, 1e-3f);
      expect_close(matmul_tn(transpose(a), b), ref, 1e-3f);
      expect_close(matmul_nt(a, transpose(b)), ref, 1e-3f);
    }
  }
}

TEST(BackendProperty, SoftmaxRowsSumToOneOnEveryBackend) {
  util::Rng rng(321);
  for (const backend::Kernels* k : all_backends()) {
    BackendOverride ov(k);
    for (int trial = 0; trial < 6; ++trial) {
      const std::size_t rows = 1 + static_cast<std::size_t>(rng.uniform() * 9);
      const std::size_t cols = 1 + static_cast<std::size_t>(rng.uniform() * 40);
      Tensor logits = random_tensor(rows, cols, rng);
      const Tensor probs = softmax(logits);
      for (std::size_t i = 0; i < probs.rows(); ++i) {
        double sum = 0.0;
        for (std::size_t j = 0; j < probs.cols(); ++j) {
          const float p = probs.at(i, j);
          ASSERT_GE(p, 0.0f);
          ASSERT_LE(p, 1.0f);
          sum += p;
        }
        ASSERT_NEAR(sum, 1.0, 1e-5) << k->name;
      }
    }
  }
}

// -------------------------------------------------------- quantization

TEST(Quantization, RoundTripErrorBoundedByScale) {
  util::Rng rng(77);
  Tensor w = random_tensor(9, 23, rng);
  poison(w, rng);
  const QuantizedMatrix q = quantize_rows(w);
  ASSERT_EQ(q.rows, w.rows());
  ASSERT_EQ(q.cols, w.cols());
  const Tensor back = dequantize(q);
  for (std::size_t r = 0; r < w.rows(); ++r) {
    for (std::size_t c = 0; c < w.cols(); ++c) {
      EXPECT_NEAR(back.at(r, c), w.at(r, c), q.scales[r] * 1.01f)
          << "row " << r << " col " << c;
    }
  }
}

TEST(Quantization, ZeroWeightsStayExactlyZero) {
  Tensor w = Tensor::zeros(4, 11);
  w.at(1, 3) = 2.0f;  // rows 0, 2, 3 stay constant-zero
  const QuantizedMatrix q = quantize_rows(w);
  const Tensor back = dequantize(q);
  for (std::size_t r = 0; r < w.rows(); ++r) {
    for (std::size_t c = 0; c < w.cols(); ++c) {
      if (w.at(r, c) == 0.0f) {
        EXPECT_EQ(back.at(r, c), 0.0f) << "row " << r << " col " << c;
      }
    }
  }
}

TEST(Quantization, MatmulQuantMatchesFloatMatmulOnDequantizedWeights) {
  util::Rng rng(88);
  Tensor x = random_tensor(7, 19, rng);
  Tensor w = random_tensor(19, 13, rng);
  poison(x, rng);
  const QuantizedMatrix q = quantize_rows(w);
  const Tensor ref = matmul(x, dequantize(q));
  for (const backend::Kernels* k : all_backends()) {
    BackendOverride ov(k);
    // Same math up to the order of the two scale multiplies, so only
    // ulp-level differences are acceptable.
    expect_close(matmul_quant(x, q), ref, 1e-3f);
  }
}

TEST(Quantization, MatmulQuantBitwiseIdenticalAcrossBackends) {
  util::Rng rng(91);
  Tensor x = random_tensor(5, 33, rng);
  Tensor w = random_tensor(33, 17, rng);
  poison(x, rng);
  const QuantizedMatrix q = quantize_rows(w);
  BackendOverride scalar(backend::lookup("scalar"));
  const Tensor ref = matmul_quant(x, q);
  for (const backend::Kernels* k : all_backends()) {
    BackendOverride other(k);
    expect_same_bits(matmul_quant(x, q), ref, k->name);
  }
}

// ------------------------------------------------- int8 serving path

// Hand-crafted, perfectly separable 2-class model: an identity-free
// encoder and a head whose columns point at +/- the class direction.
ensemble::ServableModel separable_model() {
  const std::size_t dim = 8;
  Tensor w = Tensor::zeros(dim, 2);
  for (std::size_t i = 0; i < dim; ++i) {
    w.at(i, 0) = 1.0f;
    w.at(i, 1) = -1.0f;
  }
  nn::Linear head(w, Tensor::zeros(2));
  nn::Sequential encoder;  // empty = identity
  nn::Classifier clf(encoder, std::move(head));
  return ensemble::ServableModel(std::move(clf), {"pos", "neg"});
}

// Points clustered at +/- 2 per coordinate with small noise.
void separable_data(Tensor& inputs, std::vector<std::size_t>& labels) {
  util::Rng rng(13);
  const std::size_t count = 40, dim = 8;
  inputs = Tensor::zeros(count, dim);
  labels.assign(count, 0);
  for (std::size_t i = 0; i < count; ++i) {
    const bool neg = (i % 2 != 0);
    labels[i] = neg ? 1 : 0;
    for (std::size_t j = 0; j < dim; ++j) {
      inputs.at(i, j) = (neg ? -2.0f : 2.0f) +
                        0.1f * static_cast<float>(rng.normal());
    }
  }
}

TEST(Int8Serving, PrecisionSwitchAndPredictionsAgree) {
  ensemble::ServableModel model = separable_model();
  EXPECT_EQ(model.precision(), ensemble::Precision::kFloat32);
  Tensor inputs;
  std::vector<std::size_t> labels;
  separable_data(inputs, labels);
  const auto float_labels = model.predict_batch(inputs);
  model.set_precision(ensemble::Precision::kInt8);
  EXPECT_EQ(model.precision(), ensemble::Precision::kInt8);
  const auto int8_labels = model.predict_batch(inputs);
  EXPECT_EQ(float_labels, int8_labels);
  const Tensor proba = model.predict_proba(inputs);
  ASSERT_EQ(proba.rows(), inputs.rows());
  for (std::size_t i = 0; i < proba.rows(); ++i) {
    EXPECT_NEAR(proba.at(i, 0) + proba.at(i, 1), 1.0f, 1e-5f);
  }
  model.set_precision(ensemble::Precision::kFloat32);
  EXPECT_EQ(model.predict_batch(inputs), float_labels);
}

TEST(Int8Serving, AccuracyGatePassesOnSeparableData) {
  ensemble::ServableModel model = separable_model();
  Tensor inputs;
  std::vector<std::size_t> labels;
  separable_data(inputs, labels);
  const eval::Int8GateResult gate =
      eval::int8_accuracy_gate(model, inputs, labels, 1.0);
  EXPECT_EQ(gate.float32_accuracy, 100.0);
  EXPECT_EQ(gate.int8_accuracy, 100.0);
  EXPECT_EQ(gate.delta_pp, 0.0);
  EXPECT_TRUE(gate.pass);
  // The gate must restore the precision it found.
  EXPECT_EQ(model.precision(), ensemble::Precision::kFloat32);
}

TEST(Int8Serving, LoadHonoursServeInt8Env) {
  ensemble::ServableModel model = separable_model();
  const std::string path =
      (std::filesystem::temp_directory_path() / "taglets_servable_int8.bin")
          .string();
  model.save(path);
  Tensor inputs;
  std::vector<std::size_t> labels;
  separable_data(inputs, labels);
  const auto float_labels = model.predict_batch(inputs);

  ASSERT_EQ(::setenv("TAGLETS_SERVE_INT8", "1", 1), 0);
  ensemble::ServableModel quantized = ensemble::ServableModel::load(path);
  ASSERT_EQ(::unsetenv("TAGLETS_SERVE_INT8"), 0);
  EXPECT_EQ(quantized.precision(), ensemble::Precision::kInt8);
  EXPECT_EQ(quantized.predict_batch(inputs), float_labels);

  ensemble::ServableModel plain = ensemble::ServableModel::load(path);
  EXPECT_EQ(plain.precision(), ensemble::Precision::kFloat32);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace taglets::tensor
