// Shared miniature-world fixtures for the test suite. The full
// experiment world (1200 concepts, 30k+ auxiliary images, 40-epoch
// backbone pretraining) is deliberately expensive; tests use a shrunken
// world with the same structure so the whole suite runs in a couple of
// minutes on one core. Fixtures are memoized per process.
#pragma once

#include <memory>

#include "backbone/zoo.hpp"
#include "scads/scads.hpp"
#include "synth/split.hpp"
#include "synth/tasks.hpp"

namespace taglets::testing {

/// Small world config: ~300 concepts, low-budget camera. All target
/// class names are attached so every task builder works.
inline synth::WorldConfig small_world_config(std::uint64_t seed = 7) {
  synth::WorldConfig config = synth::default_world_config(seed);
  config.concept_count = 300;
  config.cross_edges = 600;
  config.render_regions = 8;
  return config;
}

/// Low-budget pretraining config matched to the small world.
inline backbone::PretrainConfig small_pretrain_config() {
  backbone::PretrainConfig config;
  config.hidden_dim = 64;
  config.feature_dim = 24;
  config.images_per_class = 8;
  config.epochs = 25;
  return config;
}

/// Memoized small world (built once per test binary).
inline synth::World& small_world() {
  static synth::World world(small_world_config());
  return world;
}

/// Memoized zoo over the small world (no disk cache: tests must not
/// depend on prior runs).
inline backbone::Zoo& small_zoo() {
  static backbone::Zoo zoo(&small_world(), small_pretrain_config(),
                           std::string{});
  return zoo;
}

/// Memoized SCADS over the small world with a small auxiliary corpus
/// installed.
inline scads::Scads& small_scads() {
  static std::unique_ptr<scads::Scads> instance = [] {
    auto& world = small_world();
    auto scads = std::make_unique<scads::Scads>(
        world.graph(), world.taxonomy(), world.scads_embeddings());
    util::Rng rng(1234);
    scads->install_dataset(
        world.make_auxiliary_corpus(world.auxiliary_concepts(), 10, rng));
    return scads;
  }();
  return *instance;
}

/// A small 10-class 1-shot task (the FMD analogue on the small world).
inline synth::FewShotTask small_task(std::size_t shots = 1,
                                     std::uint64_t split = 0) {
  synth::TaskSpec spec = synth::fmd_spec();
  spec.images_per_class = 30;
  synth::Dataset pool = synth::build_task_pool(small_world(), spec, 11);
  return synth::make_few_shot_task(pool, shots, spec.test_per_class,
                                   split + 101);
}

}  // namespace taglets::testing
