#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>

#include "tensor/ops.hpp"
#include "tensor/serialize.hpp"
#include "tensor/tensor.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace taglets::tensor {
namespace {

Tensor random_tensor(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Tensor t = Tensor::zeros(rows, cols);
  for (float& x : t.data()) x = static_cast<float>(rng.normal());
  return t;
}

/// Reference O(n^3) matmul for verification.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  Tensor c = Tensor::zeros(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += a.at(i, k) * b.at(k, j);
      c.at(i, j) = static_cast<float>(s);
    }
  }
  return c;
}

void expect_close(const Tensor& a, const Tensor& b, float tol = 1e-4f) {
  ASSERT_TRUE(same_shape(a, b)) << a.shape_string() << " vs " << b.shape_string();
  auto ad = a.data();
  auto bd = b.data();
  for (std::size_t i = 0; i < ad.size(); ++i) {
    ASSERT_NEAR(ad[i], bd[i], tol) << "at index " << i;
  }
}

// -------------------------------------------------------- construction

// Regression: Tensor storage must honour kAlignment (32 bytes) on
// every construction path, including the copy-in ones — the SIMD
// backends rely on an aligned base pointer (see tensor/tensor.hpp).
TEST(Tensor, StorageIsThirtyTwoByteAligned) {
  auto aligned = [](const Tensor& t) {
    return reinterpret_cast<std::uintptr_t>(t.data().data()) % kAlignment == 0;
  };
  EXPECT_TRUE(aligned(Tensor::zeros(7)));
  EXPECT_TRUE(aligned(Tensor::zeros(3, 5)));
  EXPECT_TRUE(aligned(Tensor::full(2, 9, 1.0f)));
  EXPECT_TRUE(aligned(Tensor::from_vector({1.0f, 2.0f, 3.0f})));
  EXPECT_TRUE(aligned(Tensor::from_matrix(2, 2, {1.0f, 2.0f, 3.0f, 4.0f})));
  EXPECT_TRUE(aligned(Tensor::identity(5)));
  const Tensor m = Tensor::from_matrix(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(aligned(m.reshape(3, 2)));
  EXPECT_TRUE(aligned(m.flatten()));
  EXPECT_TRUE(aligned(m.row_copy(1)));
  const std::size_t idx[] = {1, 0};
  EXPECT_TRUE(aligned(m.gather_rows(idx)));
  Tensor copy = m;  // copy construction must preserve alignment too
  EXPECT_TRUE(aligned(copy));
}

TEST(Tensor, ZerosVector) {
  Tensor v = Tensor::zeros(5);
  EXPECT_TRUE(v.is_vector());
  EXPECT_EQ(v.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(v[i], 0.0f);
}

TEST(Tensor, ZerosMatrixAndFull) {
  Tensor m = Tensor::zeros(2, 3);
  EXPECT_TRUE(m.is_matrix());
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  Tensor f = Tensor::full(2, 2, 1.5f);
  EXPECT_EQ(f.at(1, 1), 1.5f);
}

TEST(Tensor, FromMatrixValidatesSize) {
  EXPECT_THROW(Tensor::from_matrix(2, 2, {1.0f, 2.0f, 3.0f}),
               std::invalid_argument);
  Tensor m = Tensor::from_matrix(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(m.at(1, 0), 3.0f);
}

TEST(Tensor, Identity) {
  Tensor id = Tensor::identity(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(id.at(i, j), i == j ? 1.0f : 0.0f);
    }
  }
}

TEST(Tensor, RowAccessAndCopy) {
  Tensor m = Tensor::from_matrix(2, 3, {1, 2, 3, 4, 5, 6});
  auto row = m.row(1);
  EXPECT_EQ(row[2], 6.0f);
  Tensor copy = m.row_copy(0);
  EXPECT_TRUE(copy.is_vector());
  EXPECT_EQ(copy[1], 2.0f);
}

TEST(Tensor, GatherRows) {
  Tensor m = Tensor::from_matrix(3, 2, {1, 2, 3, 4, 5, 6});
  std::vector<std::size_t> idx{2, 0, 2};
  Tensor g = m.gather_rows(idx);
  EXPECT_EQ(g.rows(), 3u);
  EXPECT_EQ(g.at(0, 0), 5.0f);
  EXPECT_EQ(g.at(1, 1), 2.0f);
  EXPECT_EQ(g.at(2, 0), 5.0f);
  std::vector<std::size_t> bad{5};
  EXPECT_THROW(m.gather_rows(bad), taglets::util::ContractViolation);
}

TEST(Tensor, ReshapeAndFlatten) {
  Tensor v = Tensor::from_vector({1, 2, 3, 4, 5, 6});
  Tensor m = v.reshape(2, 3);
  EXPECT_EQ(m.at(1, 0), 4.0f);
  Tensor back = m.flatten();
  EXPECT_TRUE(back.is_vector());
  EXPECT_EQ(back[5], 6.0f);
  EXPECT_THROW(v.reshape(2, 4), std::invalid_argument);
}

TEST(Tensor, FillAndNorm) {
  Tensor m = Tensor::zeros(2, 2);
  m.fill(2.0f);
  EXPECT_FLOAT_EQ(m.squared_norm(), 16.0f);
}

TEST(Tensor, ShapeString) {
  EXPECT_EQ(Tensor::zeros(3).shape_string(), "[3]");
  EXPECT_EQ(Tensor::zeros(2, 4).shape_string(), "[2, 4]");
}

// -------------------------------------------------------------- matmul

struct MatmulShape {
  std::size_t m, k, n;
};

class MatmulTest : public ::testing::TestWithParam<MatmulShape> {};

TEST_P(MatmulTest, MatchesNaiveReference) {
  const auto& s = GetParam();
  util::Rng rng(s.m * 1000 + s.k * 100 + s.n);
  Tensor a = random_tensor(s.m, s.k, rng);
  Tensor b = random_tensor(s.k, s.n, rng);
  expect_close(matmul(a, b), naive_matmul(a, b));
}

TEST_P(MatmulTest, TransposedVariantsConsistent) {
  const auto& s = GetParam();
  util::Rng rng(s.m + s.k + s.n);
  Tensor a = random_tensor(s.m, s.k, rng);
  Tensor b = random_tensor(s.k, s.n, rng);
  // matmul_tn(a^T stored as a, b): here build a_t explicitly.
  Tensor at = transpose(a);
  expect_close(matmul_tn(at, b), matmul(a, b));
  Tensor bt = transpose(b);
  expect_close(matmul_nt(a, bt), matmul(a, b));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulTest,
    ::testing::Values(MatmulShape{1, 1, 1}, MatmulShape{2, 3, 4},
                      MatmulShape{7, 5, 3}, MatmulShape{16, 16, 16},
                      MatmulShape{33, 65, 17}, MatmulShape{70, 70, 70},
                      MatmulShape{1, 128, 1}, MatmulShape{128, 1, 128}));

TEST(Ops, MatmulShapeErrors) {
  Tensor a = Tensor::zeros(2, 3);
  Tensor b = Tensor::zeros(4, 2);
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Ops, TransposeInvolution) {
  util::Rng rng(3);
  Tensor a = random_tensor(4, 7, rng);
  expect_close(transpose(transpose(a)), a);
}

// ---------------------------------------------------------- elementwise

TEST(Ops, AddSubHadamardScale) {
  Tensor a = Tensor::from_matrix(2, 2, {1, 2, 3, 4});
  Tensor b = Tensor::from_matrix(2, 2, {5, 6, 7, 8});
  expect_close(add(a, b), Tensor::from_matrix(2, 2, {6, 8, 10, 12}));
  expect_close(sub(b, a), Tensor::from_matrix(2, 2, {4, 4, 4, 4}));
  expect_close(hadamard(a, b), Tensor::from_matrix(2, 2, {5, 12, 21, 32}));
  expect_close(scale(a, 2.0f), Tensor::from_matrix(2, 2, {2, 4, 6, 8}));
  Tensor c = Tensor::zeros(1, 2);
  EXPECT_THROW(add(a, c), std::invalid_argument);
}

TEST(Ops, AddScaledInplace) {
  Tensor a = Tensor::from_vector({1, 1});
  Tensor b = Tensor::from_vector({2, 4});
  add_scaled_inplace(a, b, 0.5f);
  EXPECT_FLOAT_EQ(a[0], 2.0f);
  EXPECT_FLOAT_EQ(a[1], 3.0f);
}

TEST(Ops, AddRowBroadcast) {
  Tensor a = Tensor::from_matrix(2, 2, {1, 2, 3, 4});
  Tensor bias = Tensor::from_vector({10, 20});
  expect_close(add_row_broadcast(a, bias),
               Tensor::from_matrix(2, 2, {11, 22, 13, 24}));
}

// ----------------------------------------------------------- reductions

TEST(Ops, DotAndNorms) {
  std::vector<float> a{1, 2, 3};
  std::vector<float> b{4, 5, 6};
  EXPECT_FLOAT_EQ(dot(a, b), 32.0f);
  EXPECT_NEAR(l2_norm(a), std::sqrt(14.0f), 1e-6);
}

TEST(Ops, CosineSimilarityProperties) {
  std::vector<float> a{1, 0};
  std::vector<float> b{0, 1};
  std::vector<float> c{2, 0};
  std::vector<float> zero{0, 0};
  EXPECT_NEAR(cosine_similarity(a, b), 0.0f, 1e-6);
  EXPECT_NEAR(cosine_similarity(a, c), 1.0f, 1e-6);
  EXPECT_FLOAT_EQ(cosine_similarity(a, zero), 0.0f);
}

TEST(Ops, ColumnSumsAndRowMean) {
  Tensor m = Tensor::from_matrix(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor sums = column_sums(m);
  EXPECT_FLOAT_EQ(sums[0], 5.0f);
  EXPECT_FLOAT_EQ(sums[2], 9.0f);
  Tensor mean = row_mean(m);
  EXPECT_FLOAT_EQ(mean[1], 3.5f);
}

// ------------------------------------------------------------- softmax

TEST(Ops, SoftmaxRowsSumToOne) {
  util::Rng rng(5);
  Tensor logits = random_tensor(6, 9, rng);
  Tensor p = softmax(logits);
  for (std::size_t i = 0; i < p.rows(); ++i) {
    double sum = 0.0;
    for (float x : p.row(i)) {
      EXPECT_GT(x, 0.0f);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Ops, SoftmaxNumericallyStable) {
  Tensor logits = Tensor::from_matrix(1, 3, {1000.0f, 1000.0f, 900.0f});
  Tensor p = softmax(logits);
  EXPECT_NEAR(p.at(0, 0), 0.5f, 1e-4);
  EXPECT_NEAR(p.at(0, 2), 0.0f, 1e-4);
  EXPECT_FALSE(std::isnan(p.at(0, 0)));
}

TEST(Ops, SoftmaxVectorForm) {
  Tensor v = Tensor::from_vector({0.0f, 0.0f});
  Tensor p = softmax(v);
  EXPECT_NEAR(p[0], 0.5f, 1e-6);
}

TEST(Ops, SoftmaxEmptyRowsDoNotCrash) {
  // *max_element over an empty row used to be UB; empty shapes must
  // round-trip untouched instead.
  Tensor zero_cols = Tensor::zeros(3, 0);
  Tensor p = softmax(zero_cols);
  EXPECT_EQ(p.rows(), 3u);
  EXPECT_EQ(p.cols(), 0u);
  Tensor empty_vec = Tensor::zeros(0);
  EXPECT_EQ(softmax(empty_vec).size(), 0u);
}

TEST(Ops, MatmulFiniteCheckGuardsZeroSkipFastPath) {
  const bool prev = set_finite_checks(true);
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Tensor a = Tensor::from_matrix(2, 2, {0.0f, 1.0f, 2.0f, 3.0f});
  Tensor bad = Tensor::from_matrix(2, 2, {nan, 0.0f, 0.0f, 0.0f});
  EXPECT_THROW(matmul(a, bad), taglets::util::ContractViolation);
  EXPECT_THROW(matmul(bad, a), taglets::util::ContractViolation);
  EXPECT_THROW(matmul_tn(bad, a), taglets::util::ContractViolation);
  set_finite_checks(false);
  // With the guard off the zero-skip fast path runs (and may drop
  // 0 * NaN, which is exactly why the guard exists).
  Tensor c = matmul(a, bad);
  EXPECT_EQ(c.rows(), 2u);
  set_finite_checks(prev);
}

TEST(Ops, LogSoftmaxMatchesLogOfSoftmax) {
  util::Rng rng(9);
  Tensor logits = random_tensor(4, 5, rng);
  Tensor lp = log_softmax(logits);
  Tensor p = softmax(logits);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(lp.at(i, j), std::log(p.at(i, j)), 1e-4);
    }
  }
}

TEST(Ops, ArgmaxAndMaxRows) {
  Tensor m = Tensor::from_matrix(2, 3, {1, 5, 2, 9, 0, 3});
  auto args = argmax_rows(m);
  EXPECT_EQ(args[0], 1u);
  EXPECT_EQ(args[1], 0u);
  auto maxes = max_rows(m);
  EXPECT_FLOAT_EQ(maxes[1], 9.0f);
  std::vector<float> empty;
  EXPECT_THROW(argmax(empty), std::invalid_argument);
}

TEST(Ops, NormalizeRowsUnitNorm) {
  Tensor m = Tensor::from_matrix(2, 2, {3, 4, 0, 0});
  normalize_rows(m);
  EXPECT_NEAR(l2_norm(m.row(0)), 1.0f, 1e-6);
  // Zero row untouched.
  EXPECT_FLOAT_EQ(m.at(1, 0), 0.0f);
}

TEST(Ops, TopKIndicesOrderedAndTieBroken) {
  std::vector<float> values{0.1f, 0.9f, 0.9f, 0.5f};
  auto top = top_k_indices(values, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);  // tie broken toward lower index
  EXPECT_EQ(top[1], 2u);
  EXPECT_EQ(top[2], 3u);
  EXPECT_EQ(top_k_indices(values, 10).size(), 4u);
}

// ----------------------------------------------------------- serialize

TEST(Serialize, RoundTripMatrix) {
  util::Rng rng(12);
  Tensor t = random_tensor(5, 7, rng);
  std::stringstream buffer;
  write_tensor(buffer, t);
  Tensor back = read_tensor(buffer);
  expect_close(back, t, 0.0f);
}

TEST(Serialize, RoundTripVector) {
  Tensor t = Tensor::from_vector({1.5f, -2.5f, 0.0f});
  std::stringstream buffer;
  write_tensor(buffer, t);
  Tensor back = read_tensor(buffer);
  EXPECT_TRUE(back.is_vector());
  EXPECT_FLOAT_EQ(back[1], -2.5f);
}

TEST(Serialize, RejectsBadMagicAndTruncation) {
  std::stringstream bad("XXXXgarbage");
  EXPECT_THROW(read_tensor(bad), std::runtime_error);

  Tensor t = Tensor::zeros(4, 4);
  std::stringstream buffer;
  write_tensor(buffer, t);
  std::string payload = buffer.str();
  payload.resize(payload.size() / 2);
  std::stringstream truncated(payload);
  EXPECT_THROW(read_tensor(truncated), std::runtime_error);
}

}  // namespace
}  // namespace taglets::tensor
