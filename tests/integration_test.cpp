// End-to-end tests of the full TAGLETS pipeline on the small world:
// controller orchestration, the harness used by the benches, and the
// system-level properties the paper's evaluation rests on.
#include <gtest/gtest.h>

#include <cstdlib>

#include "ensemble/ensemble.hpp"
#include "eval/harness.hpp"
#include "eval/lab.hpp"
#include "modules/zsl_kg.hpp"
#include "nn/trainer.hpp"
#include "taglets/controller.hpp"
#include "test_support.hpp"

namespace taglets {
namespace {

using tensor::Tensor;

modules::ZslKgEngine& engine() {
  static modules::ZslKgEngine instance = [] {
    modules::ZslKgEngine::Config config;
    config.epochs = 20;
    config.val_classes = 10;
    return modules::ZslKgEngine(taglets::testing::small_zoo(), config);
  }();
  return instance;
}

SystemConfig fast_config(std::uint64_t seed = 5) {
  SystemConfig config;
  config.train_seed = seed;
  config.epoch_scale = 0.25;
  return config;
}

TEST(Controller, RunsEndToEnd) {
  auto task = taglets::testing::small_task(/*shots=*/2);
  Controller controller(&taglets::testing::small_scads(),
                        &taglets::testing::small_zoo(), &engine());
  SystemResult result = controller.run(task, fast_config());

  EXPECT_EQ(result.taglets.size(), 4u);
  EXPECT_EQ(result.pseudo_labels.rows(), task.unlabeled_inputs.rows());
  EXPECT_EQ(result.pseudo_labels.cols(), task.num_classes());
  EXPECT_GT(result.selection.data.size(), 0u);
  EXPECT_GT(result.train_seconds, 0.0);

  // Pseudo labels are probability rows.
  for (std::size_t i = 0; i < std::min<std::size_t>(result.pseudo_labels.rows(), 20); ++i) {
    double sum = 0.0;
    for (float v : result.pseudo_labels.row(i)) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }

  // The servable model predicts over the right label set and does much
  // better than the 10% chance level.
  Tensor logits = result.end_model.model().logits(task.test_inputs, false);
  EXPECT_GT(nn::accuracy(logits, task.test_labels), 0.3);
}

TEST(Controller, CustomModuleLineup) {
  auto task = taglets::testing::small_task(1);
  Controller controller(&taglets::testing::small_scads(),
                        &taglets::testing::small_zoo());
  SystemConfig config = fast_config();
  config.module_names = {"transfer", "multitask"};  // no zsl engine needed
  SystemResult result = controller.run(task, config);
  EXPECT_EQ(result.taglets.size(), 2u);
  EXPECT_EQ(result.taglets[0].name(), "transfer");
  EXPECT_EQ(result.taglets[1].name(), "multitask");
}

TEST(Controller, ParallelModulesMatchSerial) {
  auto task = taglets::testing::small_task(1);
  Controller controller(&taglets::testing::small_scads(),
                        &taglets::testing::small_zoo(), &engine());
  SystemConfig serial = fast_config(9);
  SystemConfig parallel = serial;
  parallel.parallel_modules = true;

  scads::Selection sel = controller.select(task, serial);
  auto a = controller.train_taglets(task, sel, serial);
  auto b = controller.train_taglets(task, sel, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    Tensor la = a[t].model().logits(task.test_inputs, false);
    Tensor lb = b[t].model().logits(task.test_inputs, false);
    for (std::size_t i = 0; i < la.size(); ++i) {
      ASSERT_EQ(la.data()[i], lb.data()[i]) << "taglet " << t;
    }
  }
}

TEST(Controller, GraphPlanMatchesSerialBitwise) {
  // The headline guarantee of the task-graph scheduler: both execution
  // plans produce the same bits — same end model, same taglets, same
  // pseudo labels — because every node re-derives its RNG from the
  // config seed rather than from scheduling order.
  auto task = taglets::testing::small_task(/*shots=*/1);
  Controller controller(&taglets::testing::small_scads(),
                        &taglets::testing::small_zoo(), &engine());
  SystemConfig serial = fast_config(17);
  serial.epoch_scale = 0.15;
  serial.pipeline = PipelineMode::kSerial;
  SystemConfig graph = serial;
  graph.pipeline = PipelineMode::kGraph;

  SystemResult a = controller.run(task, serial);
  SystemResult b = controller.run(task, graph);

  ASSERT_EQ(a.taglets.size(), b.taglets.size());
  for (std::size_t t = 0; t < a.taglets.size(); ++t) {
    EXPECT_EQ(a.taglets[t].name(), b.taglets[t].name());
    Tensor la = a.taglets[t].model().logits(task.test_inputs, false);
    Tensor lb = b.taglets[t].model().logits(task.test_inputs, false);
    ASSERT_EQ(la.size(), lb.size());
    for (std::size_t i = 0; i < la.size(); ++i) {
      ASSERT_EQ(la.data()[i], lb.data()[i]) << "taglet " << t;
    }
  }
  ASSERT_EQ(a.pseudo_labels.size(), b.pseudo_labels.size());
  for (std::size_t i = 0; i < a.pseudo_labels.size(); ++i) {
    ASSERT_EQ(a.pseudo_labels.data()[i], b.pseudo_labels.data()[i]);
  }
  Tensor ea = a.end_model.model().logits(task.test_inputs, false);
  Tensor eb = b.end_model.model().logits(task.test_inputs, false);
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    ASSERT_EQ(ea.data()[i], eb.data()[i]);
  }
}

TEST(Controller, PipelineEnvSelectsPlanAndRejectsGarbage) {
  auto task = taglets::testing::small_task(/*shots=*/1);
  Controller controller(&taglets::testing::small_scads(),
                        &taglets::testing::small_zoo());
  SystemConfig config = fast_config(19);
  config.epoch_scale = 0.1;
  config.module_names = {"transfer"};
  ASSERT_EQ(setenv("TAGLETS_PIPELINE", "bogus", 1), 0);
  EXPECT_THROW(controller.run(task, config), std::invalid_argument);
  ASSERT_EQ(setenv("TAGLETS_PIPELINE", "serial", 1), 0);
  EXPECT_EQ(controller.run(task, config).taglets.size(), 1u);
  ASSERT_EQ(unsetenv("TAGLETS_PIPELINE"), 0);
  // An explicit config mode wins over the environment.
  config.pipeline = PipelineMode::kGraph;
  EXPECT_EQ(controller.run(task, config).taglets.size(), 1u);
}

TEST(Controller, RequiresScadsAndZoo) {
  EXPECT_THROW(Controller(nullptr, &taglets::testing::small_zoo()),
               std::invalid_argument);
  EXPECT_THROW(Controller(&taglets::testing::small_scads(), nullptr),
               std::invalid_argument);
}

TEST(Controller, EnsembleBeatsMeanModule) {
  // Section 4.4.3: the ensemble improves over the average module.
  auto task = taglets::testing::small_task(/*shots=*/2);
  Controller controller(&taglets::testing::small_scads(),
                        &taglets::testing::small_zoo(), &engine());
  SystemConfig config = fast_config(11);
  config.epoch_scale = 0.4;
  scads::Selection sel = controller.select(task, config);
  auto taglets_vec = controller.train_taglets(task, sel, config);

  double mean = 0.0;
  for (auto& t : taglets_vec) {
    mean += nn::evaluate_accuracy(t.model(), task.test_inputs,
                                  task.test_labels);
  }
  mean /= static_cast<double>(taglets_vec.size());
  const double ens = ensemble::ensemble_accuracy(taglets_vec, task.test_inputs,
                                                 task.test_labels);
  EXPECT_GT(ens, mean);
}

TEST(Controller, DistillationPreservesEnsembleQuality) {
  auto task = taglets::testing::small_task(/*shots=*/2);
  Controller controller(&taglets::testing::small_scads(),
                        &taglets::testing::small_zoo(), &engine());
  SystemConfig config = fast_config(13);
  config.epoch_scale = 0.4;
  SystemResult result = controller.run(task, config);
  const double ens = ensemble::ensemble_accuracy(
      result.taglets, task.test_inputs, task.test_labels);
  Tensor logits = result.end_model.model().logits(task.test_inputs, false);
  const double end = nn::accuracy(logits, task.test_labels);
  // The paper reports end-model deltas between -5 and +4 points around
  // the ensemble; allow a slightly wider band at this tiny scale.
  EXPECT_GT(end, ens - 0.12);
}

// ------------------------------------------------------------- harness

class HarnessTest : public ::testing::Test {
 protected:
  static eval::Lab& lab() {
    static eval::Lab instance = [] {
      eval::LabConfig config;
      config.world_seed = 7;
      config.aux_images_per_concept = 8;
      config.pretrain = taglets::testing::small_pretrain_config();
      config.zsl.epochs = 15;
      config.zsl.val_classes = 10;
      config.cache_dir = std::string{};  // no disk cache in tests
      // Shrink the world through the pretrain config only; the lab world
      // itself stays the default (its cost is dominated by pretraining).
      return eval::Lab(config);
    }();
    return instance;
  }
};

TEST_F(HarnessTest, RunOnceBaselineAndTaglets) {
  eval::Harness harness(lab(), /*seeds=*/1, /*epoch_scale=*/0.15);
  const auto& spec = synth::fmd_spec();
  const double ft = harness.run_once(spec, 1, 0,
                                     {eval::kFineTuning,
                                      backbone::Kind::kRn50S, -1},
                                     0);
  EXPECT_GE(ft, 0.0);
  EXPECT_LE(ft, 100.0);
  const double tg = harness.run_once(spec, 1, 0,
                                     {eval::kTaglets,
                                      backbone::Kind::kRn50S, -1},
                                     0);
  EXPECT_GT(tg, 10.0);  // well above 10-class chance
}

TEST_F(HarnessTest, RunCellAggregatesSeeds) {
  eval::Harness harness(lab(), /*seeds=*/2, /*epoch_scale=*/0.1);
  auto summary = harness.run_cell(synth::fmd_spec(), 1, 0,
                                  {eval::kFineTuning,
                                   backbone::Kind::kRn50S, -1});
  EXPECT_GE(summary.mean, 0.0);
  EXPECT_GE(summary.ci, 0.0);
}

TEST_F(HarnessTest, ModuleDiagnosticsComplete) {
  eval::Harness harness(lab(), 1, 0.15);
  auto diag = harness.run_modules(synth::fmd_spec(), 1, 0,
                                  backbone::Kind::kRn50S, -1, 0);
  EXPECT_EQ(diag.module_accuracy.size(), 4u);
  EXPECT_TRUE(diag.module_accuracy.count("transfer"));
  EXPECT_TRUE(diag.module_accuracy.count("zsl-kg"));
  EXPECT_GT(diag.ensemble, 0.0);
  EXPECT_GT(diag.end_model, 0.0);
}

TEST_F(HarnessTest, LeaveOneOutCoversEveryModule) {
  eval::Harness harness(lab(), 1, 0.15);
  auto deltas = harness.run_leave_one_out(synth::fmd_spec(), 1, 0,
                                          backbone::Kind::kRn50S, 0);
  EXPECT_EQ(deltas.size(), 4u);
  for (const auto& [name, delta] : deltas) {
    EXPECT_LT(std::abs(delta), 100.0) << name;
  }
}

TEST_F(HarnessTest, LeaveOneOutKeepsDuplicateModulesDistinct) {
  // Regression: duplicate module names in the line-up collapsed onto one
  // map key, so run_leave_one_out silently dropped all but the last
  // slot's delta (and run_modules its accuracy).
  eval::Harness harness(lab(), 1, 0.1);
  auto deltas = harness.run_leave_one_out(synth::fmd_spec(), 1, 0,
                                          backbone::Kind::kRn50S, 0,
                                          {"transfer", "transfer"});
  EXPECT_EQ(deltas.size(), 2u);
  EXPECT_TRUE(deltas.count("transfer"));
  EXPECT_TRUE(deltas.count("transfer#1"));

  auto diag = harness.run_modules(synth::fmd_spec(), 1, 0,
                                  backbone::Kind::kRn50S, -1, 0,
                                  {"transfer", "transfer"});
  EXPECT_EQ(diag.module_accuracy.size(), 2u);
  EXPECT_TRUE(diag.module_accuracy.count("transfer"));
  EXPECT_TRUE(diag.module_accuracy.count("transfer#1"));
}

TEST_F(HarnessTest, UnknownMethodThrows) {
  eval::Harness harness(lab(), 1, 0.1);
  EXPECT_THROW(harness.run_once(synth::fmd_spec(), 1, 0,
                                {"no-such-method", backbone::Kind::kRn50S, -1},
                                0),
               std::invalid_argument);
}

TEST_F(HarnessTest, GroceryTaskRunsWithNovelConcepts) {
  // End-to-end over the dataset whose classes include graph-missing
  // concepts (oatghurt / soyghurt) — exercises Example A.1 machinery.
  eval::Harness harness(lab(), 1, 0.1);
  const double acc = harness.run_once(synth::grocery_spec(), 1, 0,
                                      {eval::kTaglets,
                                       backbone::Kind::kRn50S, -1},
                                      0);
  EXPECT_GT(acc, 100.0 / 42.0);  // above chance
}

}  // namespace
}  // namespace taglets
