// Failure-injection and edge-case tests: wrong shapes, empty inputs,
// exhausted resources, and user errors must fail loudly with typed
// exceptions rather than corrupting results.
#include <gtest/gtest.h>

#include "ensemble/servable.hpp"
#include "nn/trainer.hpp"
#include "scads/selection.hpp"
#include "synth/tasks.hpp"
#include "taglets/controller.hpp"
#include "test_support.hpp"
#include "util/check.hpp"

namespace taglets {
namespace {

using tensor::Tensor;

// ---------------------------------------------------------------- world

TEST(WorldEdge, BadPrototypeIndexThrows) {
  auto& world = taglets::testing::small_world();
  util::Rng rng(1);
  EXPECT_THROW(world.sample_image(999999, synth::Domain::kNatural, rng),
               taglets::util::ContractViolation);
}

TEST(WorldEdge, TooManyNamedConceptsThrows) {
  synth::WorldConfig config = taglets::testing::small_world_config(5);
  config.concept_count = 40;  // far fewer nameable nodes than names
  EXPECT_THROW(synth::World{config}, std::invalid_argument);
}

TEST(WorldEdge, UnknownClassNameInDatasetThrows) {
  auto& world = taglets::testing::small_world();
  util::Rng rng(2);
  EXPECT_THROW(world.make_dataset("x", {"no_such_class"}, 3,
                                  synth::Domain::kNatural, rng),
               std::invalid_argument);
}

TEST(WorldEdge, AuxiliaryCorpusRejectsBadConcepts) {
  auto& world = taglets::testing::small_world();
  util::Rng rng(3);
  std::vector<graph::NodeId> bad{999999};
  EXPECT_THROW(world.make_auxiliary_corpus(bad, 2, rng), taglets::util::ContractViolation);
}

// ---------------------------------------------------------------- scads

TEST(ScadsEdge, InstallRejectsOutOfRangeConcepts) {
  auto& world = taglets::testing::small_world();
  scads::Scads s(world.graph(), world.taxonomy(), world.scads_embeddings());
  synth::Dataset ds;
  ds.name = "bad";
  ds.class_names = {"x"};
  ds.class_concepts = {world.graph().node_count() + 5};
  ds.inputs = Tensor::zeros(1, 4);
  ds.labels = {0};
  EXPECT_THROW(s.install_dataset(ds), std::invalid_argument);
}

TEST(ScadsEdge, SelectionWithNoDataIsEmpty) {
  auto& world = taglets::testing::small_world();
  scads::Scads s(world.graph(), world.taxonomy(), world.scads_embeddings());
  auto task = taglets::testing::small_task(1);
  scads::SelectionConfig config;
  config.seed = 1;
  scads::Selection sel = scads::select_auxiliary(s, task, config);
  EXPECT_EQ(sel.data.size(), 0u);
  EXPECT_TRUE(sel.selected_concepts.empty());
}

TEST(ScadsEdge, RemoveDatasetEmptiesSelection) {
  auto& world = taglets::testing::small_world();
  scads::Scads s(world.graph(), world.taxonomy(), world.scads_embeddings());
  util::Rng rng(4);
  auto aux = world.make_auxiliary_corpus(world.auxiliary_concepts(), 3, rng);
  aux.name = "only";
  s.install_dataset(std::move(aux));
  s.remove_dataset("only");
  EXPECT_EQ(s.total_examples(), 0u);
  EXPECT_TRUE(s.concepts_with_data().empty());
}

// ------------------------------------------------------------ controller

TEST(ControllerEdge, EmptyModuleLineupThrows) {
  auto task = taglets::testing::small_task(1);
  Controller controller(&taglets::testing::small_scads(),
                        &taglets::testing::small_zoo());
  SystemConfig config;
  config.module_names.clear();
  config.epoch_scale = 0.1;
  EXPECT_THROW(controller.run(task, config), std::invalid_argument);
}

TEST(ControllerEdge, UnknownModuleNameThrows) {
  auto task = taglets::testing::small_task(1);
  Controller controller(&taglets::testing::small_scads(),
                        &taglets::testing::small_zoo());
  SystemConfig config;
  config.module_names = {"does-not-exist"};
  EXPECT_THROW(controller.run(task, config), std::invalid_argument);
}

TEST(ControllerEdge, ZslModuleWithoutEngineThrows) {
  auto task = taglets::testing::small_task(1);
  Controller controller(&taglets::testing::small_scads(),
                        &taglets::testing::small_zoo(), /*zsl_engine=*/nullptr);
  SystemConfig config;
  config.module_names = {"zsl-kg"};
  EXPECT_THROW(controller.run(task, config), std::invalid_argument);
}

// --------------------------------------------------------------- serving

TEST(ServableEdge, WrongInputWidthThrows) {
  util::Rng rng(5);
  nn::Sequential encoder = nn::make_mlp({4, 6, 3}, rng);
  nn::Classifier model(encoder, 3, 2, rng);
  ensemble::ServableModel servable(std::move(model), {"a", "b"});
  Tensor wrong = Tensor::from_vector({1.0f, 2.0f});  // needs 4 features
  EXPECT_THROW(servable.predict(wrong), std::invalid_argument);
}

// --------------------------------------------------------------- trainer

TEST(TrainerEdge, EmptyDatasetIsANoOp) {
  util::Rng rng(6);
  nn::Sequential encoder = nn::make_mlp({3, 4, 2}, rng);
  nn::Classifier model(encoder, 2, 2, rng);
  Tensor empty = Tensor::zeros(0, 3);
  std::vector<std::size_t> no_labels;
  nn::FitConfig config;
  auto report = nn::fit_hard(model, empty, no_labels, config, rng);
  EXPECT_EQ(report.steps, 0u);
  EXPECT_TRUE(report.epoch_loss.empty());
}

TEST(TrainerEdge, SingleExampleTrains) {
  util::Rng rng(7);
  nn::Sequential encoder = nn::make_mlp({3, 4, 2}, rng);
  nn::Classifier model(encoder, 2, 2, rng);
  Tensor x = Tensor::from_matrix(1, 3, {1.0f, -1.0f, 0.5f});
  std::vector<std::size_t> y{1};
  nn::FitConfig config;
  config.epochs = 50;
  config.sgd.lr = 0.1;
  nn::fit_hard(model, x, y, config, rng);
  EXPECT_EQ(model.predict(x)[0], 1u);  // memorizes the single example
}

// ----------------------------------------------------------------- split

TEST(SplitEdge, ShotsConsumeEverythingLeavesNoUnlabeled) {
  // 30 per class, 5 test -> 25 shots leaves zero unlabeled examples.
  auto task = taglets::testing::small_task(/*shots=*/25);
  EXPECT_EQ(task.unlabeled_inputs.rows(), 0u);
  // And the system still runs end to end without unlabeled data.
  Controller controller(&taglets::testing::small_scads(),
                        &taglets::testing::small_zoo());
  SystemConfig config;
  config.module_names = {"transfer"};
  config.epoch_scale = 0.05;
  SystemResult result = controller.run(task, config);
  EXPECT_EQ(result.pseudo_labels.rows(), 0u);
  EXPECT_EQ(result.end_model.num_classes(), task.num_classes());
}

}  // namespace
}  // namespace taglets
