// Parameterized property tests: invariants that must hold across broad
// sweeps of shapes, seeds, and configurations. These complement the
// example-based unit tests with coverage of the input space.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>

#include "ensemble/distill.hpp"
#include "eval/reporting.hpp"
#include "fleet/health.hpp"
#include "fleet/protocol.hpp"
#include "fleet/ring.hpp"
#include "graph/generators.hpp"
#include "graph/retrofit.hpp"
#include "nn/grad_check.hpp"
#include "obs/metrics.hpp"
#include "nn/loss.hpp"
#include "nn/scheduler.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"
#include "taglets/task_graph.hpp"
#include "tensor/ops.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace taglets {
namespace {

using tensor::Tensor;

Tensor random_tensor(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Tensor t = Tensor::zeros(rows, cols);
  for (float& x : t.data()) x = static_cast<float>(rng.normal());
  return t;
}

// ------------------------------------------------------- rng uniformity

class RngUniformityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngUniformityTest, BucketsRoughlyEven) {
  util::Rng rng(GetParam());
  constexpr std::size_t kBuckets = 16;
  constexpr std::size_t kDraws = 16000;
  std::vector<std::size_t> counts(kBuckets, 0);
  for (std::size_t i = 0; i < kDraws; ++i) {
    counts[rng.uniform_index(kBuckets)]++;
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (std::size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, expected * 0.25);
  }
}

TEST_P(RngUniformityTest, SampleWithoutReplacementUnbiasedFirstElement) {
  util::Rng rng(GetParam() + 1);
  std::vector<std::size_t> hits(5, 0);
  for (int trial = 0; trial < 4000; ++trial) {
    hits[rng.sample_without_replacement(5, 1)[0]]++;
  }
  for (std::size_t h : hits) {
    EXPECT_NEAR(static_cast<double>(h), 800.0, 200.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngUniformityTest,
                         ::testing::Values(1, 7, 42, 1234, 99999));

// ----------------------------------------------------- softmax sweeps

struct ShapeParam {
  std::size_t rows;
  std::size_t cols;
};

class SoftmaxSweepTest : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(SoftmaxSweepTest, RowsAreDistributions) {
  const auto& s = GetParam();
  util::Rng rng(s.rows * 31 + s.cols);
  Tensor logits = random_tensor(s.rows, s.cols, rng);
  // Scale up to stress numerical stability.
  for (float& x : logits.data()) x *= 50.0f;
  Tensor p = tensor::softmax(logits);
  for (std::size_t i = 0; i < p.rows(); ++i) {
    double sum = 0.0;
    for (float v : p.row(i)) {
      ASSERT_TRUE(std::isfinite(v));
      ASSERT_GE(v, 0.0f);
      sum += v;
    }
    ASSERT_NEAR(sum, 1.0, 1e-4);
  }
}

TEST_P(SoftmaxSweepTest, ShiftInvariance) {
  const auto& s = GetParam();
  util::Rng rng(s.rows + s.cols * 17);
  Tensor logits = random_tensor(s.rows, s.cols, rng);
  Tensor shifted = logits;
  for (float& x : shifted.data()) x += 123.0f;  // same shift for all
  Tensor a = tensor::softmax(logits);
  Tensor b = tensor::softmax(shifted);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a.data()[i], b.data()[i], 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SoftmaxSweepTest,
                         ::testing::Values(ShapeParam{1, 2}, ShapeParam{3, 10},
                                           ShapeParam{16, 65},
                                           ShapeParam{64, 42},
                                           ShapeParam{7, 1200}));

// ----------------------------------------------------- matmul algebra

class MatmulAlgebraTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MatmulAlgebraTest, Associativity) {
  const std::size_t n = GetParam();
  util::Rng rng(n);
  Tensor a = random_tensor(n, n, rng);
  Tensor b = random_tensor(n, n, rng);
  Tensor c = random_tensor(n, n, rng);
  Tensor left = tensor::matmul(tensor::matmul(a, b), c);
  Tensor right = tensor::matmul(a, tensor::matmul(b, c));
  for (std::size_t i = 0; i < left.size(); ++i) {
    ASSERT_NEAR(left.data()[i], right.data()[i],
                2e-3 * std::sqrt(static_cast<double>(n)));
  }
}

TEST_P(MatmulAlgebraTest, IdentityIsNeutral) {
  const std::size_t n = GetParam();
  util::Rng rng(n + 100);
  Tensor a = random_tensor(n, n, rng);
  Tensor id = Tensor::identity(n);
  Tensor left = tensor::matmul(a, id);
  Tensor right = tensor::matmul(id, a);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(left.data()[i], a.data()[i], 1e-5);
    ASSERT_NEAR(right.data()[i], a.data()[i], 1e-5);
  }
}

TEST_P(MatmulAlgebraTest, TransposeReversesProduct) {
  const std::size_t n = GetParam();
  util::Rng rng(n + 200);
  Tensor a = random_tensor(n, n + 1, rng);
  Tensor b = random_tensor(n + 1, n + 2, rng);
  Tensor lhs = tensor::transpose(tensor::matmul(a, b));
  Tensor rhs = tensor::matmul(tensor::transpose(b), tensor::transpose(a));
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    ASSERT_NEAR(lhs.data()[i], rhs.data()[i], 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatmulAlgebraTest,
                         ::testing::Values(1, 2, 5, 16, 31, 64));

// ---------------------------------------------------- grad-check sweep

struct MlpParam {
  std::size_t in, hidden, out, batch;
};

class MlpGradSweepTest : public ::testing::TestWithParam<MlpParam> {};

TEST_P(MlpGradSweepTest, BackpropMatchesNumericGradient) {
  const auto& p = GetParam();
  util::Rng rng(p.in * 1000 + p.hidden * 100 + p.out * 10 + p.batch);
  nn::Sequential mlp = nn::make_mlp({p.in, p.hidden, p.out}, rng);
  Tensor x = random_tensor(p.batch, p.in, rng);
  std::vector<std::size_t> labels(p.batch);
  for (std::size_t i = 0; i < p.batch; ++i) labels[i] = i % p.out;

  auto loss_fn = [&] {
    Tensor logits = mlp.forward(x, true);
    return nn::cross_entropy(logits, labels).loss;
  };
  mlp.zero_grad();
  Tensor logits = mlp.forward(x, true);
  auto loss = nn::cross_entropy(logits, labels);
  mlp.backward(loss.grad_logits);
  EXPECT_LT(nn::max_param_grad_error(mlp.parameters(), loss_fn, 5e-3), 0.1);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MlpGradSweepTest,
                         ::testing::Values(MlpParam{2, 3, 2, 2},
                                           MlpParam{4, 8, 3, 5},
                                           MlpParam{6, 4, 6, 3},
                                           MlpParam{3, 10, 2, 7}));

// ----------------------------------------------------- scheduler sweep

class SchedulerMonotoneTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SchedulerMonotoneTest, DecaySchedulesNeverIncrease) {
  const std::size_t total = GetParam();
  nn::StepDecayLr step(1.0, {0.3, 0.6, 0.9});
  nn::FixMatchCosineLr fixmatch(1.0);
  nn::HalfCosineLr half(1.0);
  double prev_step = 1e9, prev_fix = 1e9, prev_half = 1e9;
  for (std::size_t k = 0; k < total; ++k) {
    const double s = step.rate(k, total);
    const double f = fixmatch.rate(k, total);
    const double h = half.rate(k, total);
    ASSERT_LE(s, prev_step + 1e-12);
    ASSERT_LE(f, prev_fix + 1e-12);
    ASSERT_LE(h, prev_half + 1e-12);
    ASSERT_GT(s, 0.0);
    ASSERT_GT(f, 0.0);
    ASSERT_GE(h, 0.0);
    prev_step = s;
    prev_fix = f;
    prev_half = h;
  }
}

INSTANTIATE_TEST_SUITE_P(Totals, SchedulerMonotoneTest,
                         ::testing::Values(10, 100, 317, 2000));

// ----------------------------------------------------- taxonomy sweeps

class PrunedSetSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrunedSetSweepTest, LevelsAreNested) {
  util::Rng rng(GetParam());
  graph::TreeSpec spec;
  spec.node_count = 150;
  graph::Taxonomy taxonomy(graph::random_tree_parents(spec, rng));
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t node = rng.uniform_index(150);
    const auto l0 = taxonomy.pruned_set(node, 0);
    const auto l1 = taxonomy.pruned_set(node, 1);
    std::set<std::size_t> s1(l1.begin(), l1.end());
    // Level-0 set nested inside level-1, and the node always pruned.
    for (std::size_t n : l0) ASSERT_TRUE(s1.count(n));
    ASSERT_TRUE(std::count(l0.begin(), l0.end(), node));
    // Every pruned node is a descendant of the pruning root.
    ASSERT_GE(l1.size(), l0.size());
  }
}

TEST_P(PrunedSetSweepTest, TreeDistanceIsAMetric) {
  util::Rng rng(GetParam() + 7);
  graph::TreeSpec spec;
  spec.node_count = 80;
  graph::Taxonomy taxonomy(graph::random_tree_parents(spec, rng));
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t a = rng.uniform_index(80);
    const std::size_t b = rng.uniform_index(80);
    const std::size_t c = rng.uniform_index(80);
    const std::size_t ab = taxonomy.tree_distance(a, b);
    const std::size_t ba = taxonomy.tree_distance(b, a);
    ASSERT_EQ(ab, ba);                                   // symmetry
    ASSERT_EQ(taxonomy.tree_distance(a, a), 0u);         // identity
    ASSERT_LE(ab, taxonomy.tree_distance(a, c) +
                      taxonomy.tree_distance(c, b));     // triangle
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrunedSetSweepTest,
                         ::testing::Values(3, 11, 29, 71));

// ----------------------------------------------------- retrofit sweeps

class RetrofitSweepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RetrofitSweepTest, RetrofittingSmoothsAcrossEdges) {
  // Property: after retrofitting, neighbors are more cosine-similar than
  // their raw word vectors were (the embeddings absorb graph structure).
  util::Rng rng(GetParam());
  graph::TreeSpec spec;
  spec.node_count = 60;
  graph::Taxonomy taxonomy(graph::random_tree_parents(spec, rng));
  graph::KnowledgeGraph g = graph::graph_from_taxonomy(
      taxonomy, graph::make_concept_names(60, "c"));
  std::vector<std::optional<Tensor>> words(60);
  for (auto& w : words) {
    Tensor v = Tensor::zeros(8);
    for (float& x : v.data()) x = static_cast<float>(rng.normal());
    w = std::move(v);
  }
  auto edge_similarity = [&](const Tensor& emb) {
    double total = 0.0;
    for (const auto& e : g.edges()) {
      total += tensor::cosine_similarity(emb.row(e.from), emb.row(e.to));
    }
    return total / static_cast<double>(g.edge_count());
  };
  graph::RetrofitConfig config;
  config.iterations = 10;
  config.center = false;
  Tensor retrofitted = graph::retrofit_embeddings(g, words, config);
  Tensor raw = Tensor::zeros(60, 8);
  for (std::size_t i = 0; i < 60; ++i) {
    auto dst = raw.row(i);
    auto src = words[i]->data();
    std::copy(src.begin(), src.end(), dst.begin());
  }
  EXPECT_GT(edge_similarity(retrofitted), edge_similarity(raw));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RetrofitSweepTest,
                         ::testing::Values(5, 13, 37));

// --------------------------------------------------- loss-grad algebra

class SoftTargetSweepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SoftTargetSweepTest, GradientSumsToZeroPerRow) {
  // d(soft CE)/d(logits) rows sum to 0 (softmax minus target, both
  // distributions) — a structural invariant of the distillation loss.
  const std::size_t cols = GetParam();
  util::Rng rng(cols);
  Tensor logits = random_tensor(6, cols, rng);
  Tensor targets = tensor::softmax(random_tensor(6, cols, rng));
  auto result = nn::soft_cross_entropy(logits, targets);
  for (std::size_t i = 0; i < 6; ++i) {
    double sum = 0.0;
    for (float g : result.grad_logits.row(i)) sum += g;
    ASSERT_NEAR(sum, 0.0, 1e-5);
  }
}

TEST_P(SoftTargetSweepTest, LossMinimizedAtTarget) {
  // Soft CE against target t is minimized (over logits) when softmax of
  // the logits equals t; check the gradient vanishes there.
  const std::size_t cols = GetParam();
  util::Rng rng(cols + 50);
  Tensor target_logits = random_tensor(2, cols, rng);
  Tensor targets = tensor::softmax(target_logits);
  auto result = nn::soft_cross_entropy(target_logits, targets);
  for (float g : result.grad_logits.data()) ASSERT_NEAR(g, 0.0, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Cols, SoftTargetSweepTest,
                         ::testing::Values(2, 5, 10, 42, 65));

// ----------------------------------------------------- one-hot algebra

TEST(DistillAlgebra, HardenOfOneHotIsIdentity) {
  std::vector<std::size_t> labels{0, 2, 1, 2};
  Tensor oh = ensemble::one_hot(labels, 3);
  Tensor hardened = ensemble::harden(oh);
  for (std::size_t i = 0; i < oh.size(); ++i) {
    EXPECT_EQ(oh.data()[i], hardened.data()[i]);
  }
}

// ----------------------------------------------- reporting composition

TEST(Reporting, StandardTableRowsMatchPaperLayout) {
  const auto rows = eval::standard_table_rows();
  ASSERT_EQ(rows.size(), 12u);  // 5 BiT + 5 RN50 + 2 pruned TAGLETS
  std::size_t bit = 0, rn50 = 0, pruned = 0, taglets_rows = 0;
  for (const auto& cell : rows) {
    if (cell.backbone == backbone::Kind::kBitS) ++bit;
    else ++rn50;
    if (cell.prune_level >= 0) ++pruned;
    if (cell.method == eval::kTaglets) ++taglets_rows;
  }
  EXPECT_EQ(bit, 5u);
  EXPECT_EQ(rn50, 7u);
  EXPECT_EQ(pruned, 2u);
  EXPECT_EQ(taglets_rows, 4u);
  // Pruned rows use the ResNet backbone, as in the paper's tables.
  for (const auto& cell : rows) {
    if (cell.prune_level >= 0) {
      EXPECT_EQ(cell.backbone, backbone::Kind::kRn50S);
      EXPECT_EQ(cell.method, eval::kTaglets);
    }
  }
}

// -------------------------------------------------------- stats sweeps

class CiSweepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CiSweepTest, CiShrinksWithSampleSize) {
  const std::size_t n = GetParam();
  util::Rng rng(n);
  std::vector<double> small, large;
  for (std::size_t i = 0; i < n; ++i) small.push_back(rng.normal());
  for (std::size_t i = 0; i < n * 4; ++i) large.push_back(rng.normal());
  EXPECT_GT(util::ci95(small), util::ci95(large) * 0.8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CiSweepTest, ::testing::Values(8, 32, 128));

// --------------------------------------------------- fleet hash ring

namespace {

std::vector<std::string> ring_node_names(std::size_t n) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < n; ++i) {
    std::string name = "shard-";  // += form: GCC 12 -Wrestrict FP
    name += std::to_string(i);
    names.push_back(std::move(name));
  }
  return names;
}

}  // namespace

class HashRingSweepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HashRingSweepTest, LookupIsInsertionOrderIndependent) {
  const std::size_t n = GetParam();
  const auto names = ring_node_names(n);
  fleet::HashRing forward, backward;
  for (std::size_t i = 0; i < n; ++i) forward.add_node(names[i]);
  for (std::size_t i = n; i > 0; --i) backward.add_node(names[i - 1]);
  for (std::uint64_t key = 0; key < 2000; ++key) {
    const std::uint64_t h = fleet::mix64(key);
    EXPECT_EQ(forward.lookup(h), backward.lookup(h));
    EXPECT_EQ(forward.successors(h), backward.successors(h));
  }
}

TEST_P(HashRingSweepTest, AddingOneNodeRemapsAboutKOverN) {
  const std::size_t n = GetParam();
  constexpr std::uint64_t kKeys = 4000;
  fleet::HashRing ring;
  for (const auto& name : ring_node_names(n)) ring.add_node(name);
  std::vector<std::string> before;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    before.push_back(ring.lookup(fleet::mix64(key)));
  }
  ring.add_node("shard-new");
  std::size_t remapped = 0;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    const std::string& after = ring.lookup(fleet::mix64(key));
    if (after != before[key]) {
      ++remapped;
      // Consistent hashing's exact invariant: a key may only move TO
      // the new node, never between old ones.
      EXPECT_EQ(after, "shard-new");
    }
  }
  // Expectation is K/(N+1); allow generous variance from vnode
  // placement but reject anything resembling full reshuffling.
  const double expected = static_cast<double>(kKeys) / (n + 1);
  EXPECT_GT(remapped, 0u);
  EXPECT_LT(static_cast<double>(remapped), expected * 3.0);
}

TEST_P(HashRingSweepTest, RemovingOneNodeOnlyRemapsItsOwnKeys) {
  const std::size_t n = GetParam();
  constexpr std::uint64_t kKeys = 4000;
  const auto names = ring_node_names(n);
  fleet::HashRing ring;
  for (const auto& name : names) ring.add_node(name);
  std::vector<std::string> before;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    before.push_back(ring.lookup(fleet::mix64(key)));
  }
  const std::string& victim = names[n / 2];
  ring.remove_node(victim);
  EXPECT_FALSE(ring.contains(victim));
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    const std::string& after = ring.lookup(fleet::mix64(key));
    // The evicted node is never routed to again...
    EXPECT_NE(after, victim);
    // ...and survivors keep every key they already owned.
    if (before[key] != victim) {
      EXPECT_EQ(after, before[key]);
    }
  }
}

TEST_P(HashRingSweepTest, SuccessorsVisitEveryNodeExactlyOnce) {
  const std::size_t n = GetParam();
  fleet::HashRing ring;
  for (const auto& name : ring_node_names(n)) ring.add_node(name);
  for (std::uint64_t key = 0; key < 200; ++key) {
    const std::uint64_t h = fleet::mix64(key * 7919);
    const auto order = ring.successors(h);
    ASSERT_EQ(order.size(), n);
    EXPECT_EQ(order.front(), ring.lookup(h));
    const std::set<std::string> unique(order.begin(), order.end());
    EXPECT_EQ(unique.size(), n);
  }
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, HashRingSweepTest,
                         ::testing::Values(2, 3, 5, 8, 16));

// ------------------------------------------------ fleet health machine

class HealthMachineSweepTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(HealthMachineSweepTest, RandomEventSequencesOnlyTakeValidEdges) {
  util::Rng rng(GetParam());
  fleet::HealthPolicy policy;
  policy.suspect_after_ms = 50.0;
  policy.dead_after_ms = 200.0;
  policy.failure_threshold = 2;
  fleet::HealthTracker tracker(policy);
  auto now = fleet::HealthTracker::Clock::now();
  bool was_dead = false;
  for (int step = 0; step < 400; ++step) {
    now += std::chrono::milliseconds(rng.uniform_index(40));
    switch (rng.uniform_index(3)) {
      case 0: tracker.record_success(now); break;
      case 1: tracker.record_failure(now); break;
      default: tracker.tick(now); break;
    }
    if (was_dead) {
      // Dead is terminal under every event.
      EXPECT_EQ(tracker.state(), fleet::HealthState::kDead);
    }
    was_dead = tracker.state() == fleet::HealthState::kDead;
    EXPECT_EQ(tracker.routable(),
              tracker.state() == fleet::HealthState::kAlive ||
                  tracker.state() == fleet::HealthState::kSuspect);
  }
  for (const auto& t : tracker.transitions()) {
    EXPECT_TRUE(fleet::transition_valid(t.from, t.to))
        << fleet::health_state_name(t.from) << " -> "
        << fleet::health_state_name(t.to);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HealthMachineSweepTest,
                         ::testing::Values(3, 17, 171, 2026));

// --------------------------------- metrics federation wire round-trip

/// Random printable metric/label names, including characters JSON and
/// the wire format must not mangle.
std::string random_name(util::Rng& rng) {
  static const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyz0123456789._{}=\"\\-/ ";
  const std::size_t len = 1 + rng.uniform_index(24);
  std::string name;
  for (std::size_t i = 0; i < len; ++i) {
    name += alphabet[rng.uniform_index(alphabet.size())];
  }
  return name;
}

class MetricsWireSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetricsWireSweepTest, RandomSnapshotLayoutsRoundTripExactly) {
  util::Rng rng(GetParam());
  fleet::MetricsResponse resp;
  const std::size_t n_snaps = rng.uniform_index(4);
  for (std::size_t s = 0; s < n_snaps; ++s) {
    obs::MetricsSnapshot snap;
    snap.source = random_name(rng);
    for (std::size_t i = rng.uniform_index(4); i > 0; --i) {
      snap.meta.emplace_back(random_name(rng), random_name(rng));
    }
    for (std::size_t i = rng.uniform_index(6); i > 0; --i) {
      snap.counters.push_back({random_name(rng), rng.next()});
    }
    for (std::size_t i = rng.uniform_index(6); i > 0; --i) {
      snap.gauges.push_back({random_name(rng), rng.normal() * 1e6});
    }
    for (std::size_t i = rng.uniform_index(4); i > 0; --i) {
      obs::MetricsSnapshot::HistogramEntry hist;
      hist.name = random_name(rng);
      const std::size_t n_bounds = rng.uniform_index(20);
      double bound = 0.0;
      for (std::size_t b = 0; b < n_bounds; ++b) {
        bound += 0.25 + static_cast<double>(rng.uniform_index(1000));
        hist.snap.bounds.push_back(bound);
      }
      for (std::size_t b = 0; b <= n_bounds; ++b) {
        const std::uint64_t c = rng.uniform_index(100000);
        hist.snap.counts.push_back(c);
        hist.snap.count += c;
        hist.snap.sum += static_cast<double>(c) * 0.5;
      }
      snap.histograms.push_back(std::move(hist));
    }
    resp.snapshots.push_back(std::move(snap));
  }

  const fleet::MetricsResponse back =
      fleet::decode_metrics_response(fleet::encode(resp));
  ASSERT_EQ(back.snapshots.size(), resp.snapshots.size());
  for (std::size_t s = 0; s < back.snapshots.size(); ++s) {
    const obs::MetricsSnapshot& a = resp.snapshots[s];
    const obs::MetricsSnapshot& b = back.snapshots[s];
    EXPECT_EQ(b.source, a.source);
    EXPECT_EQ(b.meta, a.meta);
    ASSERT_EQ(b.counters.size(), a.counters.size());
    for (std::size_t i = 0; i < a.counters.size(); ++i) {
      EXPECT_EQ(b.counters[i].name, a.counters[i].name);
      EXPECT_EQ(b.counters[i].value, a.counters[i].value);
    }
    ASSERT_EQ(b.gauges.size(), a.gauges.size());
    for (std::size_t i = 0; i < a.gauges.size(); ++i) {
      EXPECT_EQ(b.gauges[i].name, a.gauges[i].name);
      // Bit-exact: doubles cross the wire as IEEE-754 bit copies.
      EXPECT_DOUBLE_EQ(b.gauges[i].value, a.gauges[i].value);
    }
    ASSERT_EQ(b.histograms.size(), a.histograms.size());
    for (std::size_t i = 0; i < a.histograms.size(); ++i) {
      EXPECT_EQ(b.histograms[i].name, a.histograms[i].name);
      EXPECT_EQ(b.histograms[i].snap.bounds, a.histograms[i].snap.bounds);
      EXPECT_EQ(b.histograms[i].snap.counts, a.histograms[i].snap.counts);
      EXPECT_EQ(b.histograms[i].snap.count, a.histograms[i].snap.count);
      EXPECT_DOUBLE_EQ(b.histograms[i].snap.sum, a.histograms[i].snap.sum);
    }
    // And the JSON rendering of what crossed the wire stays parseable
    // even with hostile metric names (quotes, braces, backslashes).
    const std::string json = b.to_json();
    EXPECT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsWireSweepTest,
                         ::testing::Values(1, 7, 42, 99, 1234, 20260807));

// ------------------------------------------------- task-graph executor

// Builds a random layered DAG whose node bodies compute a value that is
// a pure function of the parents' values, so the final vector is a
// fingerprint of "every node ran after all of its parents". Any
// scheduling bug (missed edge, premature dispatch, double execution)
// perturbs it.
struct DagSpec {
  std::size_t nodes = 0;
  std::vector<std::vector<std::size_t>> parents;  // per node, indices < node
};

DagSpec random_dag(util::Rng& rng, std::size_t max_nodes) {
  DagSpec spec;
  spec.nodes = 2 + rng.uniform_index(max_nodes - 1);
  spec.parents.resize(spec.nodes);
  for (std::size_t i = 1; i < spec.nodes; ++i) {
    const std::size_t edges = rng.uniform_index(std::min<std::size_t>(i, 3) + 1);
    std::set<std::size_t> chosen;
    for (std::size_t e = 0; e < edges; ++e) chosen.insert(rng.uniform_index(i));
    spec.parents[i].assign(chosen.begin(), chosen.end());
  }
  return spec;
}

std::vector<std::uint64_t> run_dag(const DagSpec& spec, util::Parallel& pool) {
  std::vector<std::uint64_t> values(spec.nodes, 0);
  TaskGraph graph;
  std::vector<TaskGraph::NodeId> ids;
  for (std::size_t i = 0; i < spec.nodes; ++i) {
    std::vector<TaskGraph::NodeId> deps;
    for (const std::size_t p : spec.parents[i]) deps.push_back(ids[p]);
    ids.push_back(graph.add_node(
        "n" + std::to_string(i),
        [&values, &spec, i] {
          std::uint64_t acc = i + 1;
          for (const std::size_t p : spec.parents[i]) {
            acc = util::combine_seeds({acc, values[p]});
          }
          values[i] = acc;
        },
        deps));
  }
  const TaskGraph::RunStats stats = graph.run(pool);
  EXPECT_EQ(stats.completed, spec.nodes);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.cancelled, 0u);
  return values;
}

class TaskGraphSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TaskGraphSweepTest, ResultsIdenticalAcrossThreadCounts) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 8; ++round) {
    const DagSpec spec = random_dag(rng, 24);
    util::Parallel serial(1);
    const std::vector<std::uint64_t> reference = run_dag(spec, serial);
    for (const std::size_t threads : {2u, 4u, 7u}) {
      util::Parallel pool(threads);
      EXPECT_EQ(run_dag(spec, pool), reference)
          << "threads=" << threads << " nodes=" << spec.nodes;
    }
  }
}

TEST_P(TaskGraphSweepTest, CancellationReachesExactlyTheDescendants) {
  util::Rng rng(GetParam() ^ 0xD06F00DULL);
  for (int round = 0; round < 8; ++round) {
    const DagSpec spec = random_dag(rng, 20);
    const std::size_t victim = rng.uniform_index(spec.nodes);

    // Reference reachability from the victim along the edges.
    std::vector<bool> descendant(spec.nodes, false);
    for (std::size_t i = victim + 1; i < spec.nodes; ++i) {
      for (const std::size_t p : spec.parents[i]) {
        if (p == victim || descendant[p]) descendant[i] = true;
      }
    }

    TaskGraph graph;
    std::vector<TaskGraph::NodeId> ids;
    std::vector<std::atomic<bool>> ran(spec.nodes);
    for (auto& r : ran) r.store(false);
    for (std::size_t i = 0; i < spec.nodes; ++i) {
      std::vector<TaskGraph::NodeId> deps;
      for (const std::size_t p : spec.parents[i]) deps.push_back(ids[p]);
      ids.push_back(graph.add_node(
          "n" + std::to_string(i),
          [&ran, i, victim] {
            ran[i].store(true);
            if (i == victim) throw std::runtime_error("victim node failed");
          },
          deps));
    }
    util::Parallel pool(4);
    EXPECT_THROW(graph.run(pool), std::runtime_error);

    EXPECT_EQ(graph.state(ids[victim]), TaskGraph::NodeState::kFailed);
    for (std::size_t i = 0; i < spec.nodes; ++i) {
      if (i == victim) continue;
      if (descendant[i]) {
        EXPECT_EQ(graph.state(ids[i]), TaskGraph::NodeState::kCancelled)
            << "node " << i << " should be cancelled (victim " << victim
            << ")";
        EXPECT_FALSE(ran[i].load()) << "cancelled node " << i << " ran";
      } else {
        EXPECT_EQ(graph.state(ids[i]), TaskGraph::NodeState::kDone)
            << "independent node " << i << " should still complete";
        EXPECT_TRUE(ran[i].load());
      }
    }
  }
}

TEST_P(TaskGraphSweepTest, CycleIsRejectedBeforeAnyNodeRuns) {
  util::Rng rng(GetParam() + 17);
  const DagSpec spec = random_dag(rng, 16);
  std::atomic<int> executions{0};
  TaskGraph graph;
  std::vector<TaskGraph::NodeId> ids;
  for (std::size_t i = 0; i < spec.nodes; ++i) {
    std::vector<TaskGraph::NodeId> deps;
    for (const std::size_t p : spec.parents[i]) deps.push_back(ids[p]);
    ids.push_back(graph.add_node("n" + std::to_string(i),
                                 [&executions] { ++executions; }, deps));
  }
  // A back edge from the last node to a random earlier one closes a
  // cycle (the earlier node reaches the last one through the chain of
  // `parents` edges only if connected; make it airtight by also adding
  // the forward edge first).
  const std::size_t target = rng.uniform_index(spec.nodes - 1);
  graph.add_edge(ids[target], ids[spec.nodes - 1]);
  graph.add_edge(ids[spec.nodes - 1], ids[target]);
  EXPECT_THROW(graph.validate(), std::invalid_argument);
  util::Parallel pool(2);
  EXPECT_THROW(graph.run(pool), std::invalid_argument);
  EXPECT_EQ(executions.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaskGraphSweepTest,
                         ::testing::Values(3, 11, 29, 404, 8080));

TEST(TaskGraph, SelfEdgeAndUnknownNodeAreRejected) {
  TaskGraph graph;
  const TaskGraph::NodeId a = graph.add_node("a", [] {});
  EXPECT_THROW(graph.add_edge(a, a), std::invalid_argument);
  EXPECT_THROW(graph.add_edge(a, a + 1), std::invalid_argument);
}

TEST(TaskGraph, DuplicateEdgesCollapse) {
  TaskGraph graph;
  int runs = 0;
  const TaskGraph::NodeId a = graph.add_node("a", [] {});
  const TaskGraph::NodeId b = graph.add_node("b", [&runs] { ++runs; }, {a});
  graph.add_edge(a, b);
  graph.add_edge(a, b);
  util::Parallel pool(2);
  graph.run(pool);
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(graph.state(b), TaskGraph::NodeState::kDone);
}

TEST(TaskGraph, RunIsSingleShot) {
  TaskGraph graph;
  graph.add_node("only", [] {});
  util::Parallel pool(1);
  graph.run(pool);
  EXPECT_THROW(graph.run(pool), std::logic_error);
}

TEST(TaskGraph, NodeBodiesMayNestParallelFor) {
  // A node body that itself fans out over the same pool must not
  // deadlock even when every worker is occupied by an executor lane.
  constexpr std::size_t kNodes = 12;
  std::vector<std::uint64_t> sums(kNodes, 0);
  TaskGraph graph;
  std::vector<TaskGraph::NodeId> ids;
  for (std::size_t i = 0; i < kNodes; ++i) {
    std::vector<TaskGraph::NodeId> deps;
    if (i > 0) deps.push_back(ids[i - 1] /* chain */);
    ids.push_back(graph.add_node(
        "nest" + std::to_string(i),
        [&sums, i] {
          std::vector<std::uint64_t> parts(64);
          util::parallel_for(parts.size(),
                             [&parts, i](std::size_t j) { parts[j] = i + j; });
          sums[i] = std::accumulate(parts.begin(), parts.end(),
                                    std::uint64_t{0});
        },
        deps));
  }
  graph.run(util::Parallel::global());
  for (std::size_t i = 0; i < kNodes; ++i) {
    EXPECT_EQ(sums[i], 64 * i + 64 * 63 / 2);
  }
}

}  // namespace
}  // namespace taglets
