#include <gtest/gtest.h>

#include "baselines/finetune.hpp"
#include "baselines/fixmatch_baseline.hpp"
#include "baselines/meta_pseudo_labels.hpp"
#include "baselines/simclr.hpp"
#include "nn/grad_check.hpp"
#include "nn/trainer.hpp"
#include "test_support.hpp"

namespace taglets::baselines {
namespace {

using tensor::Tensor;

const backbone::Pretrained& rn50() {
  return taglets::testing::small_zoo().get(backbone::Kind::kRn50S);
}

double test_accuracy(nn::Classifier& model, const synth::FewShotTask& task) {
  return nn::evaluate_accuracy(model, task.test_inputs, task.test_labels);
}

// ------------------------------------------------------------ fine-tune

TEST(FineTune, LearnsAboveChance) {
  auto task = taglets::testing::small_task(/*shots=*/5);
  FineTuneConfig config;
  config.min_steps = 200;
  FineTune baseline(config);
  EXPECT_EQ(baseline.name(), "fine-tuning");
  nn::Classifier model = baseline.train(task, rn50(), 3, /*epoch_scale=*/0.5);
  EXPECT_GT(test_accuracy(model, task), 0.2);  // chance is 0.1
}

TEST(FineTune, DeterministicGivenSeed) {
  auto task = taglets::testing::small_task(1);
  FineTuneConfig config;
  config.min_steps = 50;
  FineTune baseline(config);
  nn::Classifier a = baseline.train(task, rn50(), 3, 0.2);
  nn::Classifier b = baseline.train(task, rn50(), 3, 0.2);
  Tensor la = a.logits(task.test_inputs, false);
  Tensor lb = b.logits(task.test_inputs, false);
  for (std::size_t i = 0; i < la.size(); ++i) {
    ASSERT_EQ(la.data()[i], lb.data()[i]);
  }
}

TEST(DistilledFineTune, ProducesValidModelAndUsesUnlabeled) {
  auto task = taglets::testing::small_task(/*shots=*/5);
  DistilledFineTuneConfig config;
  config.fine_tune.min_steps = 150;
  DistilledFineTune baseline(config);
  EXPECT_EQ(baseline.name(), "fine-tuning (distilled)");
  nn::Classifier model = baseline.train(task, rn50(), 3, 0.4);
  EXPECT_EQ(model.num_classes(), task.num_classes());
  EXPECT_GT(test_accuracy(model, task), 0.2);
}

TEST(DistilledFineTune, FallsBackWithoutUnlabeledData) {
  auto task = taglets::testing::small_task(2);
  task.unlabeled_inputs = Tensor::zeros(0, task.labeled_inputs.cols());
  task.unlabeled_true_labels.clear();
  DistilledFineTuneConfig config;
  config.fine_tune.min_steps = 60;
  DistilledFineTune baseline(config);
  nn::Classifier model = baseline.train(task, rn50(), 3, 0.2);
  EXPECT_EQ(model.num_classes(), task.num_classes());
}

// -------------------------------------------------------------- fixmatch

TEST(FixMatchBaseline, TrainsWithSslLoop) {
  auto task = taglets::testing::small_task(/*shots=*/5);
  modules::FixMatchConfig config;
  config.ssl_epochs = 2;
  config.ssl_min_steps = 100;
  FixMatchBaseline baseline(config);
  EXPECT_EQ(baseline.name(), "fixmatch");
  nn::Classifier model = baseline.train(task, rn50(), 3, 0.5);
  EXPECT_GT(test_accuracy(model, task), 0.2);
}

// ------------------------------------------------------------------ mpl

TEST(MetaPseudoLabels, TeacherStudentLoopRuns) {
  auto task = taglets::testing::small_task(/*shots=*/5);
  MplConfig config;
  config.steps_epochs = 2;
  config.finetune_min_steps = 300;
  MetaPseudoLabels baseline(nullptr, config);
  EXPECT_EQ(baseline.name(), "meta pseudo labels");
  nn::Classifier model = baseline.train(task, rn50(), 3, 0.5);
  EXPECT_GT(test_accuracy(model, task), 0.15);
}

TEST(MetaPseudoLabels, StudentBackboneOverride) {
  auto task = taglets::testing::small_task(2);
  const auto& bit = taglets::testing::small_zoo().get(backbone::Kind::kBitS);
  MplConfig config;
  config.steps_epochs = 1;
  config.finetune_min_steps = 40;
  // Teacher BiT, student RN50 (Appendix A.5 pairing).
  MetaPseudoLabels baseline(&rn50(), config);
  nn::Classifier model = baseline.train(task, bit, 3, 0.2);
  // The student's feature width matches RN50's.
  EXPECT_EQ(model.feature_dim(), rn50().feature_dim);
}

// --------------------------------------------------------------- simclr

TEST(SimClr, NtXentLossAndGradCheck) {
  util::Rng rng(3);
  Tensor features = Tensor::zeros(8, 5);
  for (float& x : features.data()) x = static_cast<float>(rng.normal());
  auto result = nt_xent(features, 0.5);
  EXPECT_GT(result.loss, 0.0);
  ASSERT_TRUE(tensor::same_shape(result.grad_features, features));

  auto loss_fn = [&] { return nt_xent(features, 0.5).loss; };
  EXPECT_LT(nn::max_input_grad_error(features, result.grad_features, loss_fn,
                                     1e-3),
            5e-2);
}

TEST(SimClr, NtXentLowerWhenPositivesAligned) {
  // Aligned positive pairs should give lower loss than random pairs.
  util::Rng rng(5);
  Tensor aligned = Tensor::zeros(8, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t d = 0; d < 4; ++d) {
      const float v = static_cast<float>(rng.normal());
      aligned.at(i, d) = v;
      aligned.at(i + 4, d) = v + 0.01f * static_cast<float>(rng.normal());
    }
  }
  Tensor random = Tensor::zeros(8, 4);
  for (float& x : random.data()) x = static_cast<float>(rng.normal());
  EXPECT_LT(nt_xent(aligned, 0.5).loss, nt_xent(random, 0.5).loss);
}

TEST(SimClr, NtXentValidatesBatch) {
  EXPECT_THROW(nt_xent(Tensor::zeros(3, 4), 0.5), std::invalid_argument);
  EXPECT_THROW(nt_xent(Tensor::zeros(2, 4), 0.5), std::invalid_argument);
}

TEST(SimClr, TrainsFromScratch) {
  auto task = taglets::testing::small_task(/*shots=*/5);
  SimClrConfig config;
  config.pretrain_epochs = 2;
  config.finetune_epochs = 8;
  config.finetune_min_steps = 100;
  config.hidden_dim = 32;
  config.feature_dim = 16;
  SimClr baseline(config);
  EXPECT_EQ(baseline.name(), "simclrv2");
  nn::Classifier model = baseline.train(task, rn50(), 3, 1.0);
  EXPECT_EQ(model.num_classes(), task.num_classes());
}

TEST(SimClr, ContrastivePretrainingBeatsNoPretraining) {
  // Sanity on the NT-Xent loop: contrastive pretraining of a from-
  // scratch encoder must beat fine-tuning the same architecture with no
  // pretraining at all. (The paper's "deteriorates vs. supervised
  // pretraining at small scale" claim is measured at full scale by the
  // ablation bench, where the pretrained backbones are strong.)
  auto task = taglets::testing::small_task(/*shots=*/5);
  SimClrConfig with;
  with.pretrain_epochs = 3;
  with.finetune_min_steps = 150;
  with.hidden_dim = 32;
  with.feature_dim = 16;
  SimClrConfig without = with;
  without.pretrain_epochs = 1;  // ~no contrastive phase at scale 0.1

  nn::Classifier pretrained = SimClr(with).train(task, rn50(), 3, 1.0);
  nn::Classifier scratch = SimClr(without).train(task, rn50(), 3, 0.1);
  EXPECT_GE(test_accuracy(pretrained, task) + 0.05,
            test_accuracy(scratch, task));
}

// ---------------------------------------------------------------- misc

TEST(BaselineHelpers, RngAndScaling) {
  util::Rng a = baseline_rng(1, "fine-tuning");
  util::Rng b = baseline_rng(1, "fixmatch");
  EXPECT_NE(a.next(), b.next());
  EXPECT_EQ(scale_epochs(10, 0.01), 1u);
  EXPECT_EQ(scale_epochs(10, 1.0), 10u);
}

}  // namespace
}  // namespace taglets::baselines
