#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "synth/augment.hpp"
#include "synth/split.hpp"
#include "synth/tasks.hpp"
#include "synth/world.hpp"
#include "tensor/ops.hpp"
#include "test_support.hpp"

namespace taglets::synth {
namespace {

using tensor::Tensor;

// ------------------------------------------------------------- dataset

Dataset tiny_dataset() {
  Dataset ds;
  ds.name = "tiny";
  ds.class_names = {"a", "b"};
  ds.class_concepts = {0, 1};
  ds.inputs = Tensor::from_matrix(4, 2, {1, 1, 2, 2, 3, 3, 4, 4});
  ds.labels = {0, 0, 1, 1};
  return ds;
}

TEST(Dataset, ValidatePassesAndCounts) {
  Dataset ds = tiny_dataset();
  ds.validate();
  EXPECT_EQ(ds.size(), 4u);
  EXPECT_EQ(ds.num_classes(), 2u);
  auto counts = ds.class_counts();
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(ds.indices_of_class(1), (std::vector<std::size_t>{2, 3}));
}

TEST(Dataset, ValidateCatchesInconsistencies) {
  Dataset ds = tiny_dataset();
  ds.labels.push_back(0);
  EXPECT_THROW(ds.validate(), std::logic_error);
  ds = tiny_dataset();
  ds.labels[0] = 9;
  EXPECT_THROW(ds.validate(), std::logic_error);
  ds = tiny_dataset();
  ds.class_concepts.pop_back();
  EXPECT_THROW(ds.validate(), std::logic_error);
}

TEST(Dataset, SubsetKeepsMetadata) {
  Dataset ds = tiny_dataset();
  std::vector<std::size_t> idx{3, 0};
  Dataset sub = ds.subset(idx);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.labels[0], 1u);
  EXPECT_FLOAT_EQ(sub.inputs.at(0, 0), 4.0f);
  EXPECT_EQ(sub.class_names, ds.class_names);
}

TEST(Dataset, ConcatValidatesAndMerges) {
  Dataset a = tiny_dataset();
  Dataset b = tiny_dataset();
  Dataset merged = concat(a, b);
  EXPECT_EQ(merged.size(), 8u);
  EXPECT_FLOAT_EQ(merged.inputs.at(7, 1), 4.0f);
  b.class_names[0] = "other";
  EXPECT_THROW(concat(a, b), std::invalid_argument);
}

TEST(Dataset, DomainNames) {
  EXPECT_STREQ(domain_name(Domain::kNatural), "natural");
  EXPECT_STREQ(domain_name(Domain::kClipart), "clipart");
}

// --------------------------------------------------------------- world

TEST(World, DeterministicForSameConfig) {
  auto config = taglets::testing::small_world_config(3);
  World a(config), b(config);
  EXPECT_EQ(a.graph().node_count(), b.graph().node_count());
  EXPECT_EQ(a.graph().edge_count(), b.graph().edge_count());
  for (std::size_t i = 0; i < 20; ++i) {
    auto pa = a.prototype(i);
    auto pb = b.prototype(i);
    for (std::size_t d = 0; d < pa.size(); ++d) ASSERT_EQ(pa[d], pb[d]);
  }
  util::Rng ra(1), rb(1);
  Tensor ia = a.sample_image(5, Domain::kNatural, ra);
  Tensor ib = b.sample_image(5, Domain::kNatural, rb);
  for (std::size_t d = 0; d < ia.size(); ++d) ASSERT_EQ(ia[d], ib[d]);
}

TEST(World, NamedConceptsResolvable) {
  auto& world = taglets::testing::small_world();
  for (const std::string& name : all_target_class_names()) {
    auto proto = world.prototype_for_name(name);
    ASSERT_TRUE(proto.has_value()) << name;
    EXPECT_TRUE(world.graph().has_node(name)) << name;
  }
}

TEST(World, PrototypesRespectTreeLocality) {
  auto& world = taglets::testing::small_world();
  const auto& taxonomy = world.taxonomy();
  // Property: mean parent-child distance < mean random-pair distance.
  util::Rng rng(4);
  double tree_dist = 0.0, random_dist = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 1; i < 200; ++i) {
    if (taxonomy.is_root(i)) continue;
    auto child = world.prototype(i);
    auto parent = world.prototype(taxonomy.parent(i));
    auto random = world.prototype(rng.uniform_index(200));
    double dp = 0.0, dr = 0.0;
    for (std::size_t d = 0; d < child.size(); ++d) {
      dp += (child[d] - parent[d]) * (child[d] - parent[d]);
      dr += (child[d] - random[d]) * (child[d] - random[d]);
    }
    tree_dist += std::sqrt(dp);
    random_dist += std::sqrt(dr);
    ++n;
  }
  EXPECT_LT(tree_dist / n, 0.7 * random_dist / n);
}

TEST(World, ImagesBoundedByTanh) {
  auto& world = taglets::testing::small_world();
  util::Rng rng(5);
  for (Domain d : {Domain::kNatural, Domain::kProduct, Domain::kClipart}) {
    Tensor img = world.sample_image(3, d, rng);
    EXPECT_EQ(img.size(), world.pixel_dim());
    for (float v : img.data()) {
      EXPECT_GE(v, -1.0f);
      EXPECT_LE(v, 1.0f);
    }
  }
}

TEST(World, DomainShiftChangesStatistics) {
  auto& world = taglets::testing::small_world();
  // Same rng seed: the only difference is the domain transform.
  util::Rng ra(6), rb(6);
  Tensor natural = world.sample_image(3, Domain::kNatural, ra);
  Tensor clipart = world.sample_image(3, Domain::kClipart, rb);
  float diff = 0.0f;
  for (std::size_t i = 0; i < natural.size(); ++i) {
    diff += std::abs(natural[i] - clipart[i]);
  }
  EXPECT_GT(diff / natural.size(), 0.01f);
}

TEST(World, SameClassImagesCloserThanCrossClass) {
  auto& world = taglets::testing::small_world();
  util::Rng rng(7);
  double intra = 0.0, inter = 0.0;
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t c1 = rng.uniform_index(150);
    const std::size_t c2 = (c1 + 77) % 150;
    Tensor a1 = world.sample_image(c1, Domain::kNatural, rng);
    Tensor a2 = world.sample_image(c1, Domain::kNatural, rng);
    Tensor b1 = world.sample_image(c2, Domain::kNatural, rng);
    for (std::size_t d = 0; d < a1.size(); ++d) {
      intra += (a1[d] - a2[d]) * (a1[d] - a2[d]);
      inter += (a1[d] - b1[d]) * (a1[d] - b1[d]);
    }
  }
  EXPECT_LT(intra, inter);
}

TEST(World, BlendedClassBetweenSources) {
  World world(taglets::testing::small_world_config(9));
  const std::size_t y = *world.prototype_for_name("yoghurt");
  const std::size_t o = *world.prototype_for_name("oat_milk");
  const std::size_t idx =
      world.add_blended_class("test_blend", std::vector<std::size_t>{y, o});
  EXPECT_EQ(idx, world.config().concept_count);
  EXPECT_TRUE(world.prototype_for_name("test_blend").has_value());
  // Not in the knowledge graph.
  EXPECT_FALSE(world.graph().has_node("test_blend"));
  // The blend is closer to each source than the sources' antipode.
  auto blend = world.prototype(idx);
  auto ys = world.prototype(y);
  double dist = 0.0;
  for (std::size_t d = 0; d < blend.size(); ++d) {
    dist += (blend[d] - ys[d]) * (blend[d] - ys[d]);
  }
  EXPECT_LT(std::sqrt(dist), 4.0);
  EXPECT_THROW(
      world.add_blended_class("test_blend", std::vector<std::size_t>{y}),
      std::invalid_argument);
}

TEST(World, AuxiliarySubsetClusteredAndSized) {
  auto& world = taglets::testing::small_world();
  auto subset = world.auxiliary_subset(0.25);
  const std::size_t expected = static_cast<std::size_t>(
      0.25 * static_cast<double>(world.config().concept_count - 1));
  EXPECT_NEAR(static_cast<double>(subset.size()),
              static_cast<double>(expected), 1.0);
  std::set<graph::NodeId> unique(subset.begin(), subset.end());
  EXPECT_EQ(unique.size(), subset.size());
  EXPECT_THROW(world.auxiliary_subset(0.0), std::invalid_argument);
}

TEST(World, AuxiliaryCorpusLabelsMatchConcepts) {
  auto& world = taglets::testing::small_world();
  std::vector<graph::NodeId> concepts{5, 9, 12};
  util::Rng rng(8);
  Dataset corpus = world.make_auxiliary_corpus(concepts, 4, rng);
  EXPECT_EQ(corpus.size(), 12u);
  EXPECT_EQ(corpus.num_classes(), 3u);
  EXPECT_EQ(corpus.class_concepts[1], 9u);
  EXPECT_EQ(corpus.class_names[1], world.graph().name(9));
}

// --------------------------------------------------------------- tasks

TEST(Tasks, ClassCountsMatchPaper) {
  EXPECT_EQ(fmd_class_names().size(), 10u);
  EXPECT_EQ(officehome_class_names().size(), 65u);
  EXPECT_EQ(grocery_class_names().size(), 42u);
  EXPECT_EQ(grocery_oov_class_names().size(), 2u);
}

TEST(Tasks, AllTargetNamesExcludeOov) {
  auto names = all_target_class_names();
  EXPECT_EQ(names.size(), 10u + 65u + 40u);
  for (const std::string& oov : grocery_oov_class_names()) {
    EXPECT_EQ(std::count(names.begin(), names.end(), oov), 0);
  }
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
}

TEST(Tasks, SpecsMatchAppendixA3) {
  EXPECT_EQ(fmd_spec().test_per_class, 5u);
  EXPECT_EQ(officehome_product_spec().test_per_class, 10u);
  EXPECT_EQ(officehome_clipart_spec().test_per_class, 10u);
  EXPECT_FALSE(grocery_spec().supports_20_shot);
  EXPECT_TRUE(fmd_spec().supports_20_shot);
  EXPECT_EQ(officehome_product_spec().domain, Domain::kProduct);
  EXPECT_EQ(officehome_clipart_spec().domain, Domain::kClipart);
  EXPECT_EQ(all_task_specs().size(), 4u);
}

TEST(Tasks, GroceryPoolRegistersOovClasses) {
  World world(taglets::testing::small_world_config(21));
  EXPECT_FALSE(world.prototype_for_name("oatghurt").has_value());
  TaskSpec spec = grocery_spec();
  spec.images_per_class = 12;
  Dataset pool = build_task_pool(world, spec, 11);
  EXPECT_EQ(pool.num_classes(), 42u);
  EXPECT_TRUE(world.prototype_for_name("oatghurt").has_value());
  // OOV classes carry no graph concept.
  for (std::size_t c = 0; c < pool.num_classes(); ++c) {
    const bool is_oov = pool.class_names[c] == "oatghurt" ||
                        pool.class_names[c] == "soyghurt";
    EXPECT_EQ(pool.class_concepts[c] == kNoConcept, is_oov)
        << pool.class_names[c];
  }
}

// --------------------------------------------------------------- split

TEST(Split, CountsFollowProtocol) {
  auto task = taglets::testing::small_task(/*shots=*/2);
  EXPECT_EQ(task.num_classes(), 10u);
  EXPECT_EQ(task.shots(), 2u);
  EXPECT_EQ(task.labeled_labels.size(), 20u);
  EXPECT_EQ(task.test_labels.size(), 50u);  // 5 per class
  // 30 per class - 5 test - 2 labeled = 23 unlabeled per class.
  EXPECT_EQ(task.unlabeled_inputs.rows(), 230u);
  EXPECT_EQ(task.unlabeled_true_labels.size(), 230u);
}

TEST(Split, LabeledBalancedPerClass) {
  auto task = taglets::testing::small_task(/*shots=*/3);
  std::vector<std::size_t> counts(task.num_classes(), 0);
  for (std::size_t y : task.labeled_labels) counts[y]++;
  for (std::size_t c : counts) EXPECT_EQ(c, 3u);
}

TEST(Split, DeterministicPerSeedAndDistinctAcrossSplits) {
  auto a = taglets::testing::small_task(1, 0);
  auto b = taglets::testing::small_task(1, 0);
  auto c = taglets::testing::small_task(1, 1);
  // Same split: identical labeled inputs.
  float same_diff = 0.0f, cross_diff = 0.0f;
  for (std::size_t i = 0; i < a.labeled_inputs.size(); ++i) {
    same_diff += std::abs(a.labeled_inputs.data()[i] -
                          b.labeled_inputs.data()[i]);
    cross_diff += std::abs(a.labeled_inputs.data()[i] -
                           c.labeled_inputs.data()[i]);
  }
  EXPECT_FLOAT_EQ(same_diff, 0.0f);
  EXPECT_GT(cross_diff, 0.1f);
}

TEST(Split, ThrowsWhenClassTooSmall) {
  Dataset ds = tiny_dataset();
  EXPECT_THROW(make_few_shot_task(ds, 2, 1, 0), std::invalid_argument);
  EXPECT_THROW(make_few_shot_task(ds, 0, 1, 0), std::invalid_argument);
}

// ------------------------------------------------------------- augment

TEST(Augment, WeakPreservesShapeAndStaysClose) {
  auto& world = taglets::testing::small_world();
  util::Rng rng(11);
  Tensor img = world.sample_image(2, Domain::kNatural, rng);
  Tensor weak = weak_augment(img, rng);
  EXPECT_EQ(weak.size(), img.size());
  float max_diff = 0.0f;
  for (std::size_t i = 0; i < img.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(weak[i] - img[i]));
  }
  EXPECT_LT(max_diff, 0.5f);
  EXPECT_GT(max_diff, 0.0f);
}

TEST(Augment, StrongMasksExpectedFraction) {
  util::Rng rng(13);
  Tensor batch = Tensor::full(50, 40, 1.0f);
  AugmentConfig config;
  config.strong_mask_fraction = 0.25;
  Tensor strong = strong_augment(batch, rng, config);
  std::size_t zeros = 0;
  for (float v : strong.data()) {
    if (v == 0.0f) ++zeros;
  }
  const double fraction = static_cast<double>(zeros) / strong.size();
  EXPECT_NEAR(fraction, 0.25, 0.03);
}

TEST(Augment, TwoDrawsDiffer) {
  util::Rng rng(17);
  Tensor img = Tensor::full(1, 20, 0.5f);
  Tensor a = weak_augment(img, rng);
  Tensor b = weak_augment(img, rng);
  float diff = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) diff += std::abs(a.data()[i] - b.data()[i]);
  EXPECT_GT(diff, 0.0f);
}

}  // namespace
}  // namespace taglets::synth
