// Fleet subsystem tests: protocol framing, transport, health machine,
// shard serving, hot reload, and the multi-process failover drill.
//
// This binary has a custom main: invoked as
//   fleet_test --fleet-child-shard <endpoint> <model-path>
// it becomes a shard process instead of a test runner. The SIGKILL
// failover tests re-exec this same binary to get real processes to
// kill — a thread can't be SIGKILLed, only a process can.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "fleet/client.hpp"
#include "fleet/frontend.hpp"
#include "fleet/health.hpp"
#include "fleet/protocol.hpp"
#include "fleet/ring.hpp"
#include "fleet/shard.hpp"
#include "fleet/socket.hpp"
#include "fleet/trace_merge.hpp"
#include "nn/sequential.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace {
std::string g_self_exe;           // argv[0], for re-exec
volatile std::sig_atomic_t g_child_term = 0;
}  // namespace

namespace taglets::fleet {
namespace {

using tensor::Tensor;

// ------------------------------------------------------------ fixtures

/// dim == classes; logits are the input itself, so the expected label
/// is the argmax of the submitted features.
ensemble::ServableModel make_identity_servable(std::size_t dim) {
  nn::Sequential encoder;
  encoder.add(std::make_unique<nn::Linear>(Tensor::identity(dim),
                                           Tensor::zeros(dim)));
  std::vector<std::string> names;
  for (std::size_t c = 0; c < dim; ++c) {
    names.push_back("class" + std::to_string(c));
  }
  return ensemble::ServableModel(
      nn::Classifier(encoder, nn::Linear(Tensor::identity(dim),
                                         Tensor::zeros(dim))),
      std::move(names));
}

constexpr std::size_t kDim = 8;

std::string unique_dir() {
  static std::atomic<int> counter{0};
  const std::string dir = "/tmp/taglets_fleet_" + std::to_string(getpid()) +
                          "_" + std::to_string(counter.fetch_add(1));
  (void)mkdir(dir.c_str(), 0755);
  return dir;
}

std::vector<float> random_features(util::Rng& rng, std::size_t dim = kDim) {
  std::vector<float> f(dim);
  for (float& v : f) v = static_cast<float>(rng.normal());
  return f;
}

std::size_t argmax_of(const std::vector<float>& v) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[best]) best = i;
  }
  return best;
}

ShardConfig shard_config(const std::string& endpoint) {
  ShardConfig config;
  config.endpoint = endpoint;
  config.server.workers = 2;
  config.server.queue_capacity = 1024;
  config.server.batching.max_batch_size = 8;
  config.server.batching.max_delay_ms = 0.2;
  return config;
}

/// Fast health policy so Suspect/Dead fire within test patience.
HealthPolicy fast_health() {
  HealthPolicy policy;
  policy.suspect_after_ms = 200.0;
  policy.dead_after_ms = 600.0;
  policy.failure_threshold = 3;
  return policy;
}

// ------------------------------------------------------------- protocol

TEST(FleetProtocol, PredictRoundTrip) {
  PredictRequest req;
  req.id = 42;
  req.routing_key = 0xdeadbeef;
  req.deadline_ms = 12.5;
  req.trace_id = 0xfeedface12345678ull;
  req.parent_span = 0x1122334455667788ull;
  req.features = {1.0f, -2.5f, 0.0f};
  const auto wire = encode(req);
  EXPECT_EQ(peek_type(wire), MsgType::kPredictRequest);
  const PredictRequest back = decode_predict_request(wire);
  EXPECT_EQ(back.id, 42u);
  EXPECT_EQ(back.routing_key, 0xdeadbeefu);
  EXPECT_DOUBLE_EQ(back.deadline_ms, 12.5);
  EXPECT_EQ(back.trace_id, 0xfeedface12345678ull);
  EXPECT_EQ(back.parent_span, 0x1122334455667788ull);
  EXPECT_EQ(back.features, req.features);

  PredictResponse resp;
  resp.id = 42;
  resp.status = Status::kOk;
  resp.label = 3;
  resp.confidence = 0.75f;
  resp.class_name = "cat";
  resp.shard_ms = 1.25;
  resp.queue_wait_ms = 0.5;
  resp.compute_ms = 0.75;
  const PredictResponse rback = decode_predict_response(encode(resp));
  EXPECT_EQ(rback.id, 42u);
  EXPECT_EQ(rback.status, Status::kOk);
  EXPECT_EQ(rback.label, 3u);
  EXPECT_FLOAT_EQ(rback.confidence, 0.75f);
  EXPECT_EQ(rback.class_name, "cat");
  EXPECT_DOUBLE_EQ(rback.shard_ms, 1.25);
  EXPECT_DOUBLE_EQ(rback.queue_wait_ms, 0.5);
  EXPECT_DOUBLE_EQ(rback.compute_ms, 0.75);
}

TEST(FleetProtocol, ControlRoundTrips) {
  Pong pong;
  pong.seq = 7;
  pong.model_version = 3;
  pong.queue_depth = 10;
  pong.queue_capacity = 256;
  pong.requests_ok = 1000;
  pong.requests_rejected = 5;
  pong.requests_deadline_missed = 2;
  pong.draining = 1;
  const Pong pback = decode_pong(encode(pong));
  EXPECT_EQ(pback.seq, 7u);
  EXPECT_EQ(pback.model_version, 3u);
  EXPECT_EQ(pback.queue_depth, 10u);
  EXPECT_EQ(pback.queue_capacity, 256u);
  EXPECT_EQ(pback.requests_ok, 1000u);
  EXPECT_EQ(pback.draining, 1);

  ReloadRequest reload;
  reload.path = "/tmp/model.bin";
  EXPECT_EQ(decode_reload_request(encode(reload)).path, "/tmp/model.bin");
  ReloadResponse rr;
  rr.ok = 1;
  rr.model_version = 4;
  rr.message = "fine";
  const ReloadResponse rrb = decode_reload_response(encode(rr));
  EXPECT_EQ(rrb.ok, 1);
  EXPECT_EQ(rrb.model_version, 4u);
  EXPECT_EQ(rrb.message, "fine");
  EXPECT_EQ(decode_ping(encode(Ping{9})).seq, 9u);
  StatsResponse stats;
  stats.json = "{\"a\":1}";
  EXPECT_EQ(decode_stats_response(encode(stats)).json, "{\"a\":1}");
}

TEST(FleetProtocol, TraceExportRoundTrip) {
  const auto req_wire = encode(TraceExportRequest{});
  EXPECT_EQ(peek_type(req_wire), MsgType::kTraceExportRequest);
  decode_trace_export_request(req_wire);  // empty body must round-trip

  TraceExportResponse resp;
  ProcessTrace proc;
  proc.pid = 4242;
  proc.name = "shard unix:/tmp/s0.sock";
  proc.now_us = 123456.75;
  proc.align_offset_us = -17.5;
  proc.dropped = 3;
  WireSpan span;
  span.name = "serve.request";
  span.tid = 7;
  span.ts_us = 1000.25;
  span.dur_us = 42.5;
  span.depth = 2;
  span.attrs = {{"id", "9"}, {"trace_id", "77"}};
  proc.spans.push_back(span);
  proc.spans.push_back(WireSpan{});  // attr-less span is legal
  resp.processes.push_back(proc);
  resp.processes.push_back(ProcessTrace{});  // span-less process is legal

  const auto wire = encode(resp);
  EXPECT_EQ(peek_type(wire), MsgType::kTraceExportResponse);
  const TraceExportResponse back = decode_trace_export_response(wire);
  ASSERT_EQ(back.processes.size(), 2u);
  const ProcessTrace& p = back.processes[0];
  EXPECT_EQ(p.pid, 4242u);
  EXPECT_EQ(p.name, proc.name);
  EXPECT_DOUBLE_EQ(p.now_us, 123456.75);
  EXPECT_DOUBLE_EQ(p.align_offset_us, -17.5);
  EXPECT_EQ(p.dropped, 3u);
  ASSERT_EQ(p.spans.size(), 2u);
  EXPECT_EQ(p.spans[0].name, "serve.request");
  EXPECT_EQ(p.spans[0].tid, 7u);
  EXPECT_DOUBLE_EQ(p.spans[0].ts_us, 1000.25);
  EXPECT_DOUBLE_EQ(p.spans[0].dur_us, 42.5);
  EXPECT_EQ(p.spans[0].depth, 2u);
  EXPECT_EQ(p.spans[0].attrs, span.attrs);
  EXPECT_TRUE(back.processes[1].spans.empty());
}

TEST(FleetProtocol, MetricsRoundTrip) {
  const auto req_wire = encode(MetricsRequest{});
  EXPECT_EQ(peek_type(req_wire), MsgType::kMetricsRequest);
  decode_metrics_request(req_wire);

  MetricsResponse resp;
  obs::MetricsSnapshot snap;
  snap.source = "shard unix:/tmp/s1.sock";
  snap.meta = {{"group", "g1"}, {"health", "alive"}};
  snap.counters = {{"serve.requests_ok_total", 12345},
                   {"obs.trace.dropped_total", 0}};
  snap.gauges = {{"serve.queue_depth", 7.0},
                 {"fleet.shard.model_version", 2.0}};
  obs::MetricsSnapshot::HistogramEntry hist;
  hist.name = "serve.latency_ms";
  hist.snap.bounds = {0.5, 1.0, 5.0};
  hist.snap.counts = {10, 20, 5, 1};  // bounds + overflow
  hist.snap.count = 36;
  hist.snap.sum = 40.25;
  snap.histograms.push_back(hist);
  resp.snapshots.push_back(snap);
  resp.snapshots.push_back(obs::MetricsSnapshot{});  // empty is legal

  const auto wire = encode(resp);
  EXPECT_EQ(peek_type(wire), MsgType::kMetricsResponse);
  const MetricsResponse back = decode_metrics_response(wire);
  ASSERT_EQ(back.snapshots.size(), 2u);
  const obs::MetricsSnapshot& s = back.snapshots[0];
  EXPECT_EQ(s.source, snap.source);
  EXPECT_EQ(s.meta, snap.meta);
  ASSERT_EQ(s.counters.size(), 2u);
  EXPECT_EQ(s.counters[0].name, "serve.requests_ok_total");
  EXPECT_EQ(s.counters[0].value, 12345u);
  ASSERT_EQ(s.gauges.size(), 2u);
  EXPECT_DOUBLE_EQ(s.gauges[0].value, 7.0);
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].name, "serve.latency_ms");
  EXPECT_EQ(s.histograms[0].snap.bounds, hist.snap.bounds);
  EXPECT_EQ(s.histograms[0].snap.counts, hist.snap.counts);
  EXPECT_EQ(s.histograms[0].snap.count, 36u);
  EXPECT_DOUBLE_EQ(s.histograms[0].snap.sum, 40.25);

  // A histogram whose counts don't line up with its bounds (+inf
  // bucket missing) must be rejected at decode, not trusted.
  MetricsResponse bad;
  obs::MetricsSnapshot bad_snap;
  obs::MetricsSnapshot::HistogramEntry bad_hist;
  bad_hist.name = "x";
  bad_hist.snap.bounds = {1.0, 2.0};
  bad_hist.snap.counts = {1, 2};  // should be 3
  bad_snap.histograms.push_back(bad_hist);
  bad.snapshots.push_back(bad_snap);
  EXPECT_THROW(decode_metrics_response(encode(bad)), ProtocolError);
}

TEST(FleetProtocol, TruncatedAndTrailingFramesThrow) {
  PredictRequest req;
  req.features = {1.0f, 2.0f};
  auto wire = encode(req);
  auto truncated = wire;
  truncated.resize(truncated.size() - 3);
  EXPECT_THROW(decode_predict_request(truncated), ProtocolError);
  auto trailing = wire;
  trailing.push_back(0);
  EXPECT_THROW(decode_predict_request(trailing), ProtocolError);
  EXPECT_THROW(decode_ping(wire), ProtocolError);  // wrong type byte
  EXPECT_THROW(peek_type(std::vector<std::uint8_t>{}), ProtocolError);
  // A length prefix claiming more floats than the frame holds must not
  // read out of bounds.
  FrameWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kPredictRequest));
  w.u64(1);
  w.u64(0);
  w.f64(0.0);
  w.u64(0);     // trace_id
  w.u64(0);     // parent_span
  w.u32(1000);  // features count, but no feature bytes follow
  EXPECT_THROW(decode_predict_request(w.take()), ProtocolError);
}

// ------------------------------------------------------------ transport

TEST(FleetSocket, EndpointParse) {
  const Endpoint u = Endpoint::parse("unix:/tmp/x.sock");
  EXPECT_EQ(u.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(u.path, "/tmp/x.sock");
  const Endpoint t = Endpoint::parse("tcp:127.0.0.1:9100");
  EXPECT_EQ(t.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(t.host, "127.0.0.1");
  EXPECT_EQ(t.port, 9100);
  EXPECT_THROW(Endpoint::parse("http://nope"), SocketError);
  EXPECT_THROW(Endpoint::parse("tcp:host"), SocketError);
  // Strict digits-only port: trailing garbage, signs/whitespace, and
  // out-of-range values are rejected, never silently truncated.
  EXPECT_THROW(Endpoint::parse("tcp:127.0.0.1:80garbage"), SocketError);
  EXPECT_THROW(Endpoint::parse("tcp:127.0.0.1:+80"), SocketError);
  EXPECT_THROW(Endpoint::parse("tcp:127.0.0.1: 80"), SocketError);
  EXPECT_THROW(Endpoint::parse("tcp:127.0.0.1:0"), SocketError);
  EXPECT_THROW(Endpoint::parse("tcp:127.0.0.1:70000"), SocketError);
}

TEST(FleetSocket, FrameRoundTripAndEof) {
  const std::string dir = unique_dir();
  const Endpoint ep = Endpoint::parse("unix:" + dir + "/echo.sock");
  Listener listener(ep);
  std::thread server([&listener] {
    auto peer = listener.accept(std::chrono::seconds(5));
    ASSERT_TRUE(peer.has_value());
    for (;;) {
      auto frame = peer->recv_frame(std::chrono::seconds(5));
      if (!frame) break;  // clean EOF
      peer->send_frame(*frame, std::chrono::seconds(5));
    }
  });
  {
    Connection conn = Connection::connect(ep, std::chrono::seconds(2));
    // A large frame exercises partial read/write resumption.
    std::vector<std::uint8_t> big(512 * 1024);
    for (std::size_t i = 0; i < big.size(); ++i) {
      big[i] = static_cast<std::uint8_t>(i * 31);
    }
    conn.send_frame(big, std::chrono::seconds(5));
    auto back = conn.recv_frame(std::chrono::seconds(5));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, big);
  }  // close -> server sees clean EOF
  server.join();
}

TEST(FleetSocket, ShutdownUnblocksReader) {
  const std::string dir = unique_dir();
  const Endpoint ep = Endpoint::parse("unix:" + dir + "/wake.sock");
  Listener listener(ep);
  Connection client = Connection::connect(ep, std::chrono::seconds(2));
  auto peer = listener.accept(std::chrono::seconds(2));
  ASSERT_TRUE(peer.has_value());
  std::thread reader([&client] {
    // Blocked with a long budget; shutdown_rw must wake it with EOF.
    EXPECT_FALSE(client.recv_frame(std::chrono::seconds(60)).has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  client.shutdown_rw();
  reader.join();
  listener.shutdown();
  EXPECT_FALSE(listener.accept(std::chrono::seconds(1)).has_value());
}

// --------------------------------------------------------------- health

TEST(FleetHealth, LifecycleAndTerminalDead) {
  using Clock = HealthTracker::Clock;
  const auto t0 = Clock::now();
  const auto at = [t0](double ms) {
    return t0 + std::chrono::microseconds(static_cast<long>(ms * 1000));
  };
  HealthTracker tracker(fast_health());
  EXPECT_EQ(tracker.state(), HealthState::kUnknown);
  EXPECT_FALSE(tracker.routable());
  // Unknown never times out — a node that never answered is not a
  // member yet, not a corpse.
  tracker.tick(at(10'000));
  EXPECT_EQ(tracker.state(), HealthState::kUnknown);

  tracker.record_success(at(10'000));
  EXPECT_EQ(tracker.state(), HealthState::kAlive);
  tracker.tick(at(10'100));
  EXPECT_EQ(tracker.state(), HealthState::kAlive);
  tracker.tick(at(10'300));  // 300ms silent > 200ms
  EXPECT_EQ(tracker.state(), HealthState::kSuspect);
  EXPECT_TRUE(tracker.routable());
  tracker.record_success(at(10'350));
  EXPECT_EQ(tracker.state(), HealthState::kAlive);
  tracker.tick(at(11'000));  // 650ms silent > 600ms: one late tick
  EXPECT_EQ(tracker.state(), HealthState::kDead);
  EXPECT_FALSE(tracker.routable());
  // Terminal: neither success nor failure revives a Dead tracker.
  tracker.record_success(at(11'100));
  tracker.record_failure(at(11'100));
  EXPECT_EQ(tracker.state(), HealthState::kDead);
  for (const auto& t : tracker.transitions()) {
    EXPECT_TRUE(transition_valid(t.from, t.to));
  }
}

TEST(FleetHealth, ResetReRegistersADeadTracker) {
  using Clock = HealthTracker::Clock;
  const auto t0 = Clock::now();
  const auto at = [t0](double ms) {
    return t0 + std::chrono::microseconds(static_cast<long>(ms * 1000));
  };
  HealthTracker tracker(fast_health());
  tracker.record_success(at(0));
  tracker.tick(at(1'000));  // silence past both bounds
  ASSERT_EQ(tracker.state(), HealthState::kDead);
  // reset() is re-registration, not a state-machine edge: the tracker
  // restarts as a brand-new Unknown member with its history cleared.
  tracker.reset();
  EXPECT_EQ(tracker.state(), HealthState::kUnknown);
  EXPECT_FALSE(tracker.routable());
  EXPECT_TRUE(tracker.transitions().empty());
  EXPECT_EQ(tracker.consecutive_failures(), 0u);
  // Unknown never times out; a heartbeat answer walks it back Alive.
  tracker.tick(at(10'000));
  EXPECT_EQ(tracker.state(), HealthState::kUnknown);
  tracker.record_success(at(10'000));
  EXPECT_EQ(tracker.state(), HealthState::kAlive);
  for (const auto& t : tracker.transitions()) {
    EXPECT_TRUE(transition_valid(t.from, t.to));
  }
}

TEST(FleetHealth, ConsecutiveFailuresSuspectAliveNode) {
  using Clock = HealthTracker::Clock;
  const auto now = Clock::now();
  HealthTracker tracker(fast_health());
  tracker.record_failure(now);  // failures before first success: Unknown
  EXPECT_EQ(tracker.state(), HealthState::kUnknown);
  tracker.record_success(now);
  tracker.record_failure(now);
  tracker.record_failure(now);
  EXPECT_EQ(tracker.state(), HealthState::kAlive);  // below threshold
  tracker.record_failure(now);
  EXPECT_EQ(tracker.state(), HealthState::kSuspect);
  tracker.record_success(now);
  EXPECT_EQ(tracker.state(), HealthState::kAlive);
  EXPECT_EQ(tracker.consecutive_failures(), 0u);
}

// ---------------------------------------------------------------- shard

TEST(FleetShard, ServesPredictsOverSocket) {
  const std::string dir = unique_dir();
  ShardServer shard(make_identity_servable(kDim),
                    shard_config("unix:" + dir + "/shard.sock"));
  shard.start();
  FleetClient client({"unix:" + dir + "/shard.sock"});

  util::Rng rng(5);
  std::vector<std::vector<float>> features;
  std::vector<std::future<PredictResponse>> pending;
  for (int i = 0; i < 64; ++i) {
    features.push_back(random_features(rng));
    pending.push_back(client.submit(features.back()));
  }
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const PredictResponse resp = pending[i].get();
    ASSERT_EQ(resp.status, Status::kOk) << resp.error;
    EXPECT_EQ(resp.label, argmax_of(features[i]));
    EXPECT_EQ(resp.class_name, "class" + std::to_string(resp.label));
    EXPECT_GE(resp.shard_ms, 0.0);
  }

  const Pong pong = client.ping();
  EXPECT_EQ(pong.model_version, 1u);
  EXPECT_EQ(pong.queue_capacity, 1024u);
  EXPECT_GE(pong.requests_ok, 64u);
  EXPECT_EQ(pong.draining, 0);

  const std::string stats = client.stats();
  EXPECT_NE(stats.find("\"workers\":2"), std::string::npos);
  shard.stop();
}

TEST(FleetShard, WrongDimensionAnswersErrorNotDisconnect) {
  const std::string dir = unique_dir();
  ShardServer shard(make_identity_servable(kDim),
                    shard_config("unix:" + dir + "/shard.sock"));
  shard.start();
  FleetClient client({"unix:" + dir + "/shard.sock"});
  const PredictResponse bad = client.predict({1.0f, 2.0f});  // dim 2 != 8
  EXPECT_EQ(bad.status, Status::kError);
  EXPECT_NE(bad.error.find("dim"), std::string::npos);
  // The connection survives a bad request.
  util::Rng rng(6);
  const auto features = random_features(rng);
  const PredictResponse good = client.predict(features);
  EXPECT_EQ(good.status, Status::kOk);
  EXPECT_EQ(good.label, argmax_of(features));
  shard.stop();
}

TEST(FleetShard, ReloadSwapsVersionAndBadPathKeepsServing) {
  const std::string dir = unique_dir();
  const std::string model_path = dir + "/v2.bin";
  make_identity_servable(kDim).save(model_path);
  ShardServer shard(make_identity_servable(kDim),
                    shard_config("unix:" + dir + "/shard.sock"));
  shard.start();
  FleetClient client({"unix:" + dir + "/shard.sock"});

  const ReloadResponse ok = client.reload(model_path);
  EXPECT_EQ(ok.ok, 1) << ok.message;
  EXPECT_EQ(ok.model_version, 2u);
  EXPECT_EQ(shard.model_version(), 2u);

  const ReloadResponse bad = client.reload(dir + "/missing.bin");
  EXPECT_EQ(bad.ok, 0);
  EXPECT_EQ(bad.model_version, 2u);  // old model stayed active
  EXPECT_FALSE(bad.message.empty());

  // Dimension mismatch is rejected by validation, not by crashing.
  make_identity_servable(kDim + 1).save(dir + "/wrongdim.bin");
  const ReloadResponse wrong = client.reload(dir + "/wrongdim.bin");
  EXPECT_EQ(wrong.ok, 0);
  EXPECT_NE(wrong.message.find("dim"), std::string::npos);

  util::Rng rng(7);
  const auto features = random_features(rng);
  const PredictResponse resp = client.predict(features);
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.label, argmax_of(features));
  shard.stop();
}

TEST(FleetShard, Int8DisagreementGateIsLabelFreeAndDeterministic) {
  ensemble::ServableModel model = make_identity_servable(kDim);
  const double d1 = int8_disagreement_fraction(model, 128);
  const double d2 = int8_disagreement_fraction(model, 128);
  EXPECT_DOUBLE_EQ(d1, d2);
  // Identity weights quantize exactly: argmax cannot flip.
  EXPECT_DOUBLE_EQ(d1, 0.0);
  EXPECT_EQ(model.precision(), ensemble::Precision::kInt8);
}

TEST(FleetShard, HotReloadUnderLoadLosesNothing) {
  const std::string dir = unique_dir();
  const std::string model_path = dir + "/next.bin";
  make_identity_servable(kDim).save(model_path);
  ShardServer shard(make_identity_servable(kDim),
                    shard_config("unix:" + dir + "/shard.sock"));
  shard.start();
  FleetClient client({"unix:" + dir + "/shard.sock"});

  // Open-loop-ish producer pipelining predicts while reloads flip the
  // model underneath. The acceptance bar: zero swap-attributable
  // failures — every response is kOk, every future resolves.
  std::atomic<bool> stop_producer{false};
  std::vector<PredictResponse> responses;
  std::thread producer([&] {
    util::Rng rng(8);
    std::vector<std::future<PredictResponse>> pending;
    while (!stop_producer.load()) {
      pending.push_back(client.submit(random_features(rng)));
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    for (auto& f : pending) responses.push_back(f.get());
  });

  std::size_t swaps = 0;
  for (int i = 0; i < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    const ReloadOutcome out = shard.reload(model_path);
    ASSERT_TRUE(out.ok) << out.message;
    ++swaps;
  }
  stop_producer.store(true);
  producer.join();

  EXPECT_EQ(shard.model_version(), 1u + swaps);
  ASSERT_GT(responses.size(), 100u);
  for (const PredictResponse& resp : responses) {
    EXPECT_EQ(resp.status, Status::kOk)
        << status_name(resp.status) << ": " << resp.error;
  }
  shard.stop();
}

// ------------------------------------------------------------- frontend

FrontendConfig frontend_config(const std::string& dir,
                               const std::vector<std::string>& shard_eps) {
  FrontendConfig config;
  std::string ep = "unix:";  // += form: GCC 12 -Wrestrict FP (PR105329)
  ep += dir;
  ep += "/front.sock";
  config.endpoint = std::move(ep);
  for (std::size_t g = 0; g < shard_eps.size(); ++g) {
    std::string name = "g";  // += form: GCC 12 -Wrestrict FP (PR105329)
    name += std::to_string(g);
    config.groups.push_back({std::move(name), {shard_eps[g]}});
  }
  config.health = fast_health();
  config.heartbeat_interval_ms = 20.0;
  return config;
}

TEST(FleetFrontend, RoutesAcrossShardsAndAggregates) {
  const std::string dir = unique_dir();
  std::vector<std::unique_ptr<ShardServer>> shards;
  std::vector<std::string> eps;
  for (int s = 0; s < 3; ++s) {
    eps.push_back("unix:" + dir + "/s" + std::to_string(s) + ".sock");
    shards.push_back(std::make_unique<ShardServer>(
        make_identity_servable(kDim), shard_config(eps.back())));
    shards.back()->start();
  }
  Frontend frontend(frontend_config(dir, eps));
  frontend.start();
  ASSERT_TRUE(frontend.wait_until_ready(3, std::chrono::seconds(5)));
  for (const auto& ep : eps) {
    EXPECT_EQ(frontend.replica_state(ep), HealthState::kAlive);
  }

  FleetClient client({"unix:" + dir + "/front.sock"});
  util::Rng rng(9);
  std::vector<std::vector<float>> features;
  std::vector<std::future<PredictResponse>> pending;
  for (std::uint64_t key = 0; key < 300; ++key) {
    features.push_back(random_features(rng));
    pending.push_back(client.submit(features.back(), key));
  }
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const PredictResponse resp = pending[i].get();
    ASSERT_EQ(resp.status, Status::kOk) << resp.error;
    EXPECT_EQ(resp.label, argmax_of(features[i]));
  }
  // Consistent hashing spread the keys: every shard served some.
  for (const auto& shard : shards) {
    EXPECT_GT(shard->stats_snapshot().completed, 0u);
  }

  const std::string stats = client.stats();
  EXPECT_NE(stats.find("\"state\":\"alive\""), std::string::npos);
  EXPECT_NE(stats.find("\"requests_total\":"), std::string::npos);
  const Pong pong = client.ping();
  EXPECT_EQ(pong.model_version, 1u);

  // Broadcast reload bumps every shard.
  const std::string model_path = dir + "/v2.bin";
  make_identity_servable(kDim).save(model_path);
  const ReloadResponse reload = client.reload(model_path);
  EXPECT_EQ(reload.ok, 1) << reload.message;
  EXPECT_EQ(reload.model_version, 2u);
  for (const auto& shard : shards) EXPECT_EQ(shard->model_version(), 2u);

  frontend.stop();
  for (auto& shard : shards) shard->stop();
}

// ------------------------------------------- multi-process failover E2E

pid_t spawn_shard_process(const std::string& endpoint,
                          const std::string& model_path) {
  const pid_t pid = fork();
  if (pid == 0) {
    execl(g_self_exe.c_str(), g_self_exe.c_str(), "--fleet-child-shard",
          endpoint.c_str(), model_path.c_str(), static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  return pid;
}

void wait_shard_reachable(const std::string& endpoint) {
  const Endpoint ep = Endpoint::parse(endpoint);
  for (int attempt = 0; attempt < 200; ++attempt) {
    try {
      const Connection probe =
          Connection::connect(ep, std::chrono::milliseconds(250));
      (void)probe;
      return;
    } catch (const SocketError&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  }
  FAIL() << "shard at " << endpoint << " never became reachable";
}

void reap(pid_t pid, int sig) {
  kill(pid, sig);
  int status = 0;
  waitpid(pid, &status, 0);
}

TEST(FleetFailover, SigkilledShardCostsNoRequests) {
  const std::string dir = unique_dir();
  const std::string model_path = dir + "/model.bin";
  make_identity_servable(kDim).save(model_path);

  std::vector<std::string> eps;
  std::vector<pid_t> pids;
  for (int s = 0; s < 3; ++s) {
    eps.push_back("unix:" + dir + "/s" + std::to_string(s) + ".sock");
    pids.push_back(spawn_shard_process(eps.back(), model_path));
    ASSERT_GT(pids.back(), 0);
  }
  for (const auto& ep : eps) wait_shard_reachable(ep);

  Frontend frontend(frontend_config(dir, eps));
  frontend.start();
  ASSERT_TRUE(frontend.wait_until_ready(3, std::chrono::seconds(5)));

  // Open-loop load from three client threads while shard 0 dies by
  // SIGKILL mid-traffic. Acceptance: every future resolves kOk — the
  // frontend absorbs the kill with failover, clients never see it.
  constexpr int kClients = 3;
  constexpr int kPerClient = 250;
  std::atomic<std::size_t> ok{0};
  std::vector<std::string> failures;
  std::mutex failures_mu;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      FleetClient client({"unix:" + dir + "/front.sock"});
      util::Rng rng(100 + c);
      std::vector<std::future<PredictResponse>> pending;
      for (int i = 0; i < kPerClient; ++i) {
        pending.push_back(client.submit(
            random_features(rng),
            static_cast<std::uint64_t>(c * kPerClient + i)));
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      for (auto& f : pending) {
        const PredictResponse resp = f.get();
        if (resp.status == Status::kOk) {
          ok.fetch_add(1);
        } else {
          std::lock_guard<std::mutex> lock(failures_mu);
          failures.push_back(std::string(status_name(resp.status)) + ": " +
                             resp.error);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  kill(pids[0], SIGKILL);  // mid-traffic
  int status = 0;
  waitpid(pids[0], &status, 0);
  for (auto& t : clients) t.join();

  EXPECT_EQ(ok.load(), static_cast<std::size_t>(kClients * kPerClient))
      << failures.size() << " failures, first: "
      << (failures.empty() ? "-" : failures.front());

  // The dead replica is detected and its single-replica group leaves
  // the ring.
  const auto deadline =
      HealthTracker::Clock::now() + std::chrono::seconds(5);
  while (frontend.replica_state(eps[0]) != HealthState::kDead &&
         HealthTracker::Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(frontend.replica_state(eps[0]), HealthState::kDead);
  while (frontend.ring_groups().size() != 2 &&
         HealthTracker::Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const auto groups = frontend.ring_groups();
  EXPECT_EQ(groups.size(), 2u);
  for (const auto& g : groups) EXPECT_NE(g, "g0");

  // Survivors serve 100% after the kill.
  {
    FleetClient client({"unix:" + dir + "/front.sock"});
    util::Rng rng(200);
    for (int i = 0; i < 100; ++i) {
      const PredictResponse resp =
          client.predict(random_features(rng), static_cast<std::uint64_t>(i));
      ASSERT_EQ(resp.status, Status::kOk) << resp.error;
    }
  }

  frontend.stop();
  reap(pids[1], SIGTERM);
  reap(pids[2], SIGTERM);
}

// Regression for a mutual-join deadlock: when two replica channels
// broke near-simultaneously with requests in flight, each exiting
// reader used to redispatch its pending set into the other replica and
// join the other (still-exiting) reader under that replica's conn_mu —
// reader A waiting on reader B waiting on reader A, hanging the
// frontend and any later stop(). Broken readers are now parked and
// reaped by the heartbeat thread, so crossing failovers must complete.
TEST(FleetFailover, TwoSimultaneousKillsFailOverWithoutDeadlock) {
  const std::string dir = unique_dir();
  const std::string model_path = dir + "/model.bin";
  make_identity_servable(kDim).save(model_path);

  std::vector<std::string> eps;
  std::vector<pid_t> pids;
  for (int s = 0; s < 3; ++s) {
    eps.push_back("unix:" + dir + "/s" + std::to_string(s) + ".sock");
    pids.push_back(spawn_shard_process(eps.back(), model_path));
    ASSERT_GT(pids.back(), 0);
  }
  for (const auto& ep : eps) wait_shard_reachable(ep);

  Frontend frontend(frontend_config(dir, eps));
  frontend.start();
  ASSERT_TRUE(frontend.wait_until_ready(3, std::chrono::seconds(5)));

  // Unpaced bursts keep every replica's pending map deep, so when both
  // kills land there are predicts in flight on both channels whose
  // failovers cross into each other's replica.
  constexpr int kClients = 4;
  constexpr int kPerClient = 400;
  std::atomic<std::size_t> ok{0};
  std::vector<std::string> failures;
  std::mutex failures_mu;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      FleetClient client({"unix:" + dir + "/front.sock"});
      util::Rng rng(300 + c);
      std::vector<std::future<PredictResponse>> pending;
      for (int i = 0; i < kPerClient; ++i) {
        pending.push_back(client.submit(
            random_features(rng),
            static_cast<std::uint64_t>(c * kPerClient + i)));
      }
      for (auto& f : pending) {
        const PredictResponse resp = f.get();
        if (resp.status == Status::kOk) {
          ok.fetch_add(1);
        } else {
          std::lock_guard<std::mutex> lock(failures_mu);
          failures.push_back(std::string(status_name(resp.status)) + ": " +
                             resp.error);
        }
      }
    });
  }
  // Kill mid-burst, while the submission loops are still running.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  kill(pids[0], SIGKILL);
  kill(pids[1], SIGKILL);
  int status = 0;
  waitpid(pids[0], &status, 0);
  waitpid(pids[1], &status, 0);
  // The regression bar is liveness, not zero shed: every future must
  // resolve (a mutual join would hang these .get()s and trip the test
  // timeout). Under this burst one surviving shard may legally shed
  // load — but only as explicit backpressure, never as an error.
  for (auto& t : clients) t.join();
  EXPECT_GT(ok.load(), 0u);
  for (const std::string& failure : failures) {
    EXPECT_TRUE(failure.rfind("overloaded", 0) == 0 ||
                failure.rfind("unavailable", 0) == 0)
        << failure;
  }

  // And the survivor serves 100% once the burst clears.
  {
    FleetClient client({"unix:" + dir + "/front.sock"});
    util::Rng rng(350);
    for (int i = 0; i < 50; ++i) {
      const PredictResponse resp = client.predict(
          random_features(rng), static_cast<std::uint64_t>(i));
      ASSERT_EQ(resp.status, Status::kOk) << resp.error;
    }
  }

  frontend.stop();
  reap(pids[2], SIGTERM);
}

// A shard that restarts after an outage rejoins the fleet without a
// frontend restart: the heartbeat thread re-probes Dead endpoints, a
// successful connect re-registers the replica (fresh tracker), and its
// group returns to the ring.
TEST(FleetFailover, RestartedShardRejoinsFleet) {
  const std::string dir = unique_dir();
  const std::string model_path = dir + "/model.bin";
  make_identity_servable(kDim).save(model_path);

  std::vector<std::string> eps;
  std::vector<pid_t> pids;
  for (int s = 0; s < 2; ++s) {
    eps.push_back("unix:" + dir + "/s" + std::to_string(s) + ".sock");
    pids.push_back(spawn_shard_process(eps.back(), model_path));
    ASSERT_GT(pids.back(), 0);
  }
  for (const auto& ep : eps) wait_shard_reachable(ep);

  FrontendConfig config = frontend_config(dir, eps);
  config.dead_probe_interval_ms = 50.0;
  Frontend frontend(config);
  frontend.start();
  ASSERT_TRUE(frontend.wait_until_ready(2, std::chrono::seconds(5)));

  kill(pids[0], SIGKILL);
  int status = 0;
  waitpid(pids[0], &status, 0);
  const auto death_deadline =
      HealthTracker::Clock::now() + std::chrono::seconds(5);
  while ((frontend.replica_state(eps[0]) != HealthState::kDead ||
          frontend.ring_groups().size() != 1) &&
         HealthTracker::Clock::now() < death_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_EQ(frontend.replica_state(eps[0]), HealthState::kDead);
  ASSERT_EQ(frontend.ring_groups().size(), 1u);

  // Restart in place on the same endpoint; the probe path must bring
  // the replica back to Alive and re-add its group to the ring.
  pids[0] = spawn_shard_process(eps[0], model_path);
  ASSERT_GT(pids[0], 0);
  wait_shard_reachable(eps[0]);
  const auto rejoin_deadline =
      HealthTracker::Clock::now() + std::chrono::seconds(5);
  while ((frontend.replica_state(eps[0]) != HealthState::kAlive ||
          frontend.ring_groups().size() != 2) &&
         HealthTracker::Clock::now() < rejoin_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(frontend.replica_state(eps[0]), HealthState::kAlive);
  EXPECT_EQ(frontend.ring_groups().size(), 2u);

  // The whole fleet serves again, rejoined shard included.
  FleetClient client({"unix:" + dir + "/front.sock"});
  util::Rng rng(400);
  for (int i = 0; i < 50; ++i) {
    const PredictResponse resp =
        client.predict(random_features(rng), static_cast<std::uint64_t>(i));
    ASSERT_EQ(resp.status, Status::kOk) << resp.error;
  }

  frontend.stop();
  reap(pids[0], SIGTERM);
  reap(pids[1], SIGTERM);
}

// ----------------------------------- fleet-wide observability E2E

TEST(FleetObservability, ClockOffsetMidpointEstimate) {
  // The producer's clock read is assumed to fall halfway between the
  // collector's send (t0) and receive (t1); the offset maps producer
  // timestamps onto the collector's epoch.
  EXPECT_DOUBLE_EQ(estimate_clock_offset_us(1000.0, 1100.0, 1300.0), -250.0);
  EXPECT_DOUBLE_EQ(estimate_clock_offset_us(1000.0, 1100.0, 1050.0), 0.0);
  EXPECT_DOUBLE_EQ(estimate_clock_offset_us(500.0, 500.0, 100.0), 400.0);
}

/// Minimal JSON well-formedness scan: balanced braces/brackets outside
/// strings, escapes honored, nothing after the top-level value. Not a
/// parser — enough to catch truncated or mis-escaped render output
/// without a JSON library (CI runs the real python3 -m json.tool).
bool json_well_formed(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false, escaped = false, seen_value = false, closed = false;
  for (const char c : text) {
    if (closed) {  // only whitespace may follow the top-level value
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') continue;
      return false;
    }
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; seen_value = true; break;
      case '{': case '[': stack.push_back(c); seen_value = true; break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        closed = stack.empty();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        closed = stack.empty();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty() && seen_value && closed;
}

const std::string* attr_value(const WireSpan& span, const std::string& key) {
  for (const auto& kv : span.attrs) {
    if (kv.first == key) return &kv.second;
  }
  return nullptr;
}

// The headline acceptance test: a frontend (this process) over two
// real shard processes, traced predicts, then a trace export through
// the full client -> frontend -> shard chain. The merged result must
// hold one lane per process (real, distinct pids) and every request's
// frontend-side "fleet.request" span must join a shard-side
// "serve.request" span in a DIFFERENT process via the propagated
// trace_id — with the shard's clock-aligned span nested inside the
// frontend's, which is what makes the merged timeline readable.
TEST(FleetObservability, MultiProcessTraceMergeJoinsAcrossPids) {
  // Children inherit TAGLETS_TRACE=1 through the re-exec; the parent
  // flips the in-process flag for its frontend spans.
  setenv("TAGLETS_TRACE", "1", 1);
  obs::set_trace_enabled(true);
  obs::set_process_name("frontend");

  const std::string dir = unique_dir();
  const std::string model_path = dir + "/model.bin";
  make_identity_servable(kDim).save(model_path);

  std::vector<std::string> eps;
  std::vector<pid_t> pids;
  for (int s = 0; s < 2; ++s) {
    eps.push_back("unix:" + dir + "/s" + std::to_string(s) + ".sock");
    pids.push_back(spawn_shard_process(eps.back(), model_path));
    ASSERT_GT(pids.back(), 0);
  }
  for (const auto& ep : eps) wait_shard_reachable(ep);

  FrontendConfig config = frontend_config(dir, eps);
  config.event_log_path = dir + "/events.jsonl";
  Frontend frontend(config);
  frontend.start();
  ASSERT_TRUE(frontend.wait_until_ready(2, std::chrono::seconds(5)));

  constexpr int kRequests = 40;
  FleetClient client({"unix:" + dir + "/front.sock"});
  util::Rng rng(500);
  for (int i = 0; i < kRequests; ++i) {
    const PredictResponse resp =
        client.predict(random_features(rng), static_cast<std::uint64_t>(i));
    ASSERT_EQ(resp.status, Status::kOk) << resp.error;
    // The latency decomposition rides on every response.
    EXPECT_GE(resp.queue_wait_ms, 0.0);
    EXPECT_GE(resp.compute_ms, 0.0);
    EXPECT_GT(resp.shard_ms, 0.0);
  }

  const TraceExportResponse traces = client.trace_export();
  ASSERT_EQ(traces.processes.size(), 3u);  // frontend + 2 shards
  std::set<std::uint32_t> pids_seen;
  for (const auto& proc : traces.processes) {
    pids_seen.insert(proc.pid);
    EXPECT_FALSE(proc.name.empty());
  }
  EXPECT_EQ(pids_seen.size(), 3u) << "pids must be real and distinct";
  const auto my_pid = static_cast<std::uint32_t>(getpid());
  EXPECT_TRUE(pids_seen.count(my_pid));

  // Index shard-side serve.request spans by propagated trace_id, with
  // clock-aligned start/end on the frontend's epoch.
  struct Aligned { std::uint32_t pid; double start_us; double end_us; };
  std::map<std::string, std::vector<Aligned>> serve_by_trace;
  for (const auto& proc : traces.processes) {
    for (const auto& span : proc.spans) {
      if (span.name != "serve.request") continue;
      const std::string* tid = attr_value(span, "trace_id");
      if (tid == nullptr) continue;
      serve_by_trace[*tid].push_back(
          {proc.pid, span.ts_us + proc.align_offset_us,
           span.ts_us + span.dur_us + proc.align_offset_us});
    }
  }

  // Every fleet.request span joins a cross-process serve.request, and
  // the ping-RTT-midpoint alignment lands the shard's span inside the
  // frontend's (generous slack: the bound is half the export RTT).
  constexpr double kSlackUs = 25000.0;
  std::size_t joins = 0;
  for (const auto& proc : traces.processes) {
    if (proc.pid != my_pid) continue;
    EXPECT_DOUBLE_EQ(proc.align_offset_us, 0.0)
        << "the collector is its own epoch";
    for (const auto& span : proc.spans) {
      if (span.name != "fleet.request") continue;
      const std::string* tid = attr_value(span, "trace_id");
      ASSERT_NE(tid, nullptr)
          << "frontend must originate a trace_id when tracing is on";
      const auto it = serve_by_trace.find(*tid);
      if (it == serve_by_trace.end()) continue;
      for (const Aligned& shard_span : it->second) {
        if (shard_span.pid == my_pid) continue;
        ++joins;
        EXPECT_GE(shard_span.start_us, span.ts_us - kSlackUs);
        EXPECT_LE(shard_span.end_us, span.ts_us + span.dur_us + kSlackUs);
        break;
      }
    }
  }
  EXPECT_EQ(joins, static_cast<std::size_t>(kRequests));

  // The rendered merge is one well-formed Chrome trace document with a
  // process_name metadata lane per process.
  const std::string rendered = render_chrome_trace(traces.processes);
  EXPECT_TRUE(json_well_formed(rendered)) << rendered.substr(0, 400);
  EXPECT_NE(rendered.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(rendered.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(rendered.find("\"process_name\""), std::string::npos);
  EXPECT_NE(rendered.find("frontend"), std::string::npos);
  EXPECT_NE(rendered.find("shard "), std::string::npos);

  // Metrics federation over the same chain: one snapshot per process,
  // shard snapshots labeled by the aggregator, the frontend's holding
  // the per-shard latency decomposition histograms.
  const MetricsResponse metrics = client.fleet_metrics();
  ASSERT_EQ(metrics.snapshots.size(), 3u);
  std::size_t shard_snaps = 0;
  std::uint64_t federated_ok = 0;
  for (const auto& snap : metrics.snapshots) {
    const auto meta = [&snap](const char* key) -> const std::string* {
      for (const auto& kv : snap.meta) {
        if (kv.first == key) return &kv.second;
      }
      return nullptr;
    };
    if (meta("replica_endpoint") != nullptr) {
      ++shard_snaps;
      ASSERT_NE(meta("group"), nullptr);
      ASSERT_NE(meta("health"), nullptr);
      EXPECT_EQ(*meta("health"), "alive");
      for (const auto& c : snap.counters) {
        if (c.name == "serve.requests_ok_total") federated_ok += c.value;
      }
      // The tracer's own health metrics cross the wire too: the export
      // above forced a buffer snapshot on every shard.
      bool saw_buffer_gauge = false;
      for (const auto& g : snap.gauges) {
        if (g.name == "obs.trace.buffer_spans") {
          saw_buffer_gauge = g.value > 0.0;
        }
      }
      EXPECT_TRUE(saw_buffer_gauge);
    } else {
      bool saw_decomposition = false;
      for (const auto& h : snap.histograms) {
        if (h.name.rfind("fleet.frontend.compute_ms{shard=", 0) == 0) {
          saw_decomposition = true;
          EXPECT_EQ(h.snap.counts.size(), h.snap.bounds.size() + 1);
        }
      }
      EXPECT_TRUE(saw_decomposition);
    }
  }
  EXPECT_EQ(shard_snaps, 2u);
  EXPECT_EQ(federated_ok, static_cast<std::uint64_t>(kRequests));

  // Health transitions reach the event log at heartbeat granularity,
  // and this test's whole body can finish inside one interval — give
  // the heartbeat thread time to observe and log unknown -> alive for
  // both replicas before stopping.
  const auto log_deadline = HealthTracker::Clock::now() + std::chrono::seconds(5);
  std::size_t health_lines = 0;
  do {
    health_lines = 0;
    std::ifstream poll(dir + "/events.jsonl");
    std::string poll_line;
    while (std::getline(poll, poll_line)) {
      if (poll_line.find("\"event\":\"health\"") != std::string::npos) {
        ++health_lines;
      }
    }
    if (health_lines >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  } while (HealthTracker::Clock::now() < log_deadline);

  frontend.stop();
  reap(pids[0], SIGTERM);
  reap(pids[1], SIGTERM);

  // The operational event log is JSON-lines: every line well-formed,
  // and the start-up health transitions (unknown -> alive) recorded.
  std::ifstream events(dir + "/events.jsonl");
  ASSERT_TRUE(events.is_open());
  std::string line;
  std::size_t lines = 0;
  health_lines = 0;
  while (std::getline(events, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_TRUE(json_well_formed(line)) << line;
    EXPECT_EQ(line.find("{\"ts_ms\":"), 0u) << line;
    if (line.find("\"event\":\"health\"") != std::string::npos) ++health_lines;
  }
  EXPECT_GE(lines, 2u);
  EXPECT_GE(health_lines, 2u) << "both replicas transitioned to alive";

  obs::set_trace_enabled(false);
  unsetenv("TAGLETS_TRACE");
}

}  // namespace
}  // namespace taglets::fleet

// ------------------------------------------------------------ child mode

namespace {

int run_child_shard(const char* endpoint, const char* model_path) {
  using namespace taglets;
  try {
    obs::set_process_name(std::string("shard ") + endpoint);
    ensemble::ServableModel model = ensemble::ServableModel::load(model_path);
    fleet::ShardConfig config;
    config.endpoint = endpoint;
    config.server.workers = 2;
    config.server.queue_capacity = 1024;
    config.server.batching.max_batch_size = 8;
    config.server.batching.max_delay_ms = 0.2;
    fleet::ShardServer shard(std::move(model), config);
    shard.start();
    std::signal(SIGTERM, [](int) { g_child_term = 1; });
    while (g_child_term == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    shard.stop();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "child shard failed: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  g_self_exe = argv[0];
  if (argc == 4 && std::string(argv[1]) == "--fleet-child-shard") {
    return run_child_shard(argv[2], argv[3]);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
