#include <gtest/gtest.h>

#include <set>

#include "scads/scads.hpp"
#include "scads/selection.hpp"
#include "synth/tasks.hpp"
#include "test_support.hpp"

namespace taglets::scads {
namespace {

using graph::NodeId;
using graph::Relation;

/// Fresh small SCADS (mutating tests must not touch the shared fixture).
Scads fresh_scads(std::size_t images_per_concept = 6) {
  auto& world = taglets::testing::small_world();
  Scads scads(world.graph(), world.taxonomy(), world.scads_embeddings());
  util::Rng rng(100);
  scads.install_dataset(world.make_auxiliary_corpus(
      world.auxiliary_concepts(), images_per_concept, rng));
  return scads;
}

// ------------------------------------------------------------- install

TEST(Scads, InstallIndexesExamplesByConcept) {
  Scads scads = fresh_scads(6);
  EXPECT_EQ(scads.dataset_count(), 1u);
  auto concepts = scads.concepts_with_data();
  EXPECT_EQ(concepts.size(),
            taglets::testing::small_world().config().concept_count - 1);
  EXPECT_EQ(scads.example_count(concepts.front()), 6u);
  EXPECT_EQ(scads.total_examples(), concepts.size() * 6);
}

TEST(Scads, InstallSecondDatasetAddsExamples) {
  Scads scads = fresh_scads(4);
  auto& world = taglets::testing::small_world();
  util::Rng rng(200);
  std::vector<NodeId> few{5, 6};
  synth::Dataset extra = world.make_auxiliary_corpus(few, 3, rng);
  extra.name = "extra";
  scads.install_dataset(extra);
  EXPECT_EQ(scads.example_count(5), 4u + 3u);
  scads.remove_dataset("extra");
  EXPECT_EQ(scads.example_count(5), 4u);
  EXPECT_THROW(scads.remove_dataset("never-installed"), std::invalid_argument);
}

TEST(Scads, SampleExamplesWithoutReplacement) {
  Scads scads = fresh_scads(6);
  util::Rng rng(7);
  auto refs = scads.sample_examples(10, 4, rng);
  EXPECT_EQ(refs.size(), 4u);
  std::set<std::size_t> rows;
  for (const auto& r : refs) rows.insert(r.row);
  EXPECT_EQ(rows.size(), 4u);
  // Requesting more than available returns all.
  EXPECT_EQ(scads.sample_examples(10, 100, rng).size(), 6u);
  // Unknown concept: empty.
  EXPECT_TRUE(scads.sample_examples(99999, 3, rng).empty());
}

// -------------------------------------------------------- novel concepts

TEST(Scads, AddNovelConceptWithLinks) {
  Scads scads = fresh_scads(4);
  const NodeId id = scads.add_novel_concept(
      "oatghurt", {{"yoghurt", Relation::kRelatedTo},
                   {"oat_milk", Relation::kRelatedTo}});
  EXPECT_TRUE(scads.find_concept("oatghurt").has_value());
  EXPECT_EQ(scads.graph().neighbors(id).size(), 2u);
  // Embedding approximates the linked concepts' mean.
  const auto emb = scads.embeddings().vector(id);
  float norm = 0.0f;
  for (float v : emb) norm += v * v;
  EXPECT_GT(norm, 0.5f);  // normalized, so ~1
  EXPECT_THROW(scads.add_novel_concept("oatghurt", {}), std::invalid_argument);
  EXPECT_THROW(
      scads.add_novel_concept("x", {{"no_such_concept", Relation::kIsA}}),
      std::invalid_argument);
}

TEST(Scads, AddNovelConceptPrefixFallback) {
  Scads scads = fresh_scads(4);
  // No links: Appendix A.2 prefix approximation from oat_milk etc.
  const NodeId id = scads.add_novel_concept("oatghurt", {});
  const auto emb = scads.embeddings().vector(id);
  float norm = 0.0f;
  for (float v : emb) norm += v * v;
  EXPECT_GT(norm, 0.5f);
}

// ------------------------------------------------------------ selection

synth::FewShotTask small_fmd_task() { return taglets::testing::small_task(1); }

TEST(Selection, SelfConceptChosenWithoutPruning) {
  auto& scads = taglets::testing::small_scads();
  auto task = small_fmd_task();
  SelectionConfig config;
  config.seed = 1;
  config.related_per_class = 1;
  Selection sel = select_auxiliary(scads, task, config);
  // Every class's own concept has data, so N=1 selection is exactly it.
  ASSERT_EQ(sel.intermediate_classes(), task.num_classes());
  for (std::size_t s = 0; s < sel.selected_concepts.size(); ++s) {
    EXPECT_EQ(sel.selected_concepts[s],
              task.class_concepts[sel.source_target_class[s]]);
    EXPECT_NEAR(sel.similarities[s], 1.0f, 1e-4);
  }
}

TEST(Selection, SizeIsCTimesNK) {
  auto& scads = taglets::testing::small_scads();
  auto task = small_fmd_task();
  SelectionConfig config;
  config.seed = 1;
  config.related_per_class = 2;
  config.images_per_concept = 5;
  Selection sel = select_auxiliary(scads, task, config);
  EXPECT_EQ(sel.intermediate_classes(), 20u);  // C * N, deduplicated
  EXPECT_EQ(sel.data.size(), 20u * 5u);        // each concept has >= 5 images
  sel.data.validate();
}

TEST(Selection, ConceptsDeduplicatedAcrossClasses) {
  auto& scads = taglets::testing::small_scads();
  auto task = small_fmd_task();
  SelectionConfig config;
  config.seed = 1;
  config.related_per_class = 3;
  Selection sel = select_auxiliary(scads, task, config);
  std::set<NodeId> unique(sel.selected_concepts.begin(),
                          sel.selected_concepts.end());
  EXPECT_EQ(unique.size(), sel.selected_concepts.size());
}

TEST(Selection, PruningExcludesTargetSubtrees) {
  auto& scads = taglets::testing::small_scads();
  auto task = small_fmd_task();
  const auto excluded0 =
      pruned_concepts(scads, task.class_concepts, 0);
  const auto excluded1 =
      pruned_concepts(scads, task.class_concepts, 1);
  // Level 0 contains every target concept.
  for (NodeId c : task.class_concepts) EXPECT_TRUE(excluded0.count(c));
  // Level 1 is a superset of level 0.
  for (NodeId c : excluded0) EXPECT_TRUE(excluded1.count(c));
  EXPECT_GT(excluded1.size(), excluded0.size());
  EXPECT_TRUE(pruned_concepts(scads, task.class_concepts, -1).empty());

  SelectionConfig config;
  config.seed = 1;
  config.prune_level = 0;
  Selection sel = select_auxiliary(scads, task, config);
  for (NodeId c : sel.selected_concepts) {
    EXPECT_EQ(excluded0.count(c), 0u);
  }
}

TEST(Selection, PruningReducesSimilarity) {
  auto& scads = taglets::testing::small_scads();
  auto task = small_fmd_task();
  SelectionConfig none;
  none.seed = 1;
  SelectionConfig pruned = none;
  pruned.prune_level = 1;
  Selection a = select_auxiliary(scads, task, none);
  Selection b = select_auxiliary(scads, task, pruned);
  double sim_a = 0.0, sim_b = 0.0;
  for (float s : a.similarities) sim_a += s;
  for (float s : b.similarities) sim_b += s;
  EXPECT_GT(sim_a / a.similarities.size(), sim_b / b.similarities.size());
}

TEST(Selection, DeterministicGivenSeed) {
  auto& scads = taglets::testing::small_scads();
  auto task = small_fmd_task();
  SelectionConfig config;
  config.seed = 5;
  Selection a = select_auxiliary(scads, task, config);
  Selection b = select_auxiliary(scads, task, config);
  ASSERT_EQ(a.selected_concepts, b.selected_concepts);
  ASSERT_EQ(a.data.labels, b.data.labels);
  for (std::size_t i = 0; i < a.data.inputs.size(); ++i) {
    ASSERT_EQ(a.data.inputs.data()[i], b.data.inputs.data()[i]);
  }
}

TEST(Selection, OovClassNameFallsBackToPrefix) {
  // A task containing a class with no graph concept ("oatghurt") still
  // gets related concepts through the prefix approximation.
  auto& scads = taglets::testing::small_scads();
  auto hits = related_concepts(scads, "oatghurt", 3, {});
  EXPECT_FALSE(hits.empty());
}

TEST(Selection, UnknownNameWithNoPrefixYieldsNothing) {
  auto& scads = taglets::testing::small_scads();
  auto hits = related_concepts(scads, "zzqqxx", 3, {});
  EXPECT_TRUE(hits.empty());
}

TEST(Selection, RelatedConceptsAreSemanticallyClose) {
  // Property: mean latent distance from target prototype to selected
  // concepts is smaller than to random concepts.
  auto& scads = taglets::testing::small_scads();
  auto& world = taglets::testing::small_world();
  auto task = small_fmd_task();
  SelectionConfig config;
  config.seed = 2;
  config.related_per_class = 2;
  config.prune_level = 0;  // force non-self picks
  Selection sel = select_auxiliary(scads, task, config);
  util::Rng rng(3);
  double sel_dist = 0.0, random_dist = 0.0;
  std::size_t n = 0;
  for (std::size_t s = 0; s < sel.selected_concepts.size(); ++s) {
    auto target = world.prototype(task.class_concepts[sel.source_target_class[s]]);
    auto chosen = world.prototype(sel.selected_concepts[s]);
    auto random =
        world.prototype(rng.uniform_index(world.config().concept_count));
    for (std::size_t d = 0; d < target.size(); ++d) {
      sel_dist += (target[d] - chosen[d]) * (target[d] - chosen[d]);
      random_dist += (target[d] - random[d]) * (target[d] - random[d]);
    }
    ++n;
  }
  EXPECT_LT(sel_dist, random_dist);
}

}  // namespace
}  // namespace taglets::scads
