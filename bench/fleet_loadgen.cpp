// Fleet load generator: the serving-fleet counterpart of
// serve_loadgen. Spawns three real shard processes (this binary
// re-execs itself with --fleet-child-shard), runs a frontend over
// them, drives open-loop load through Frontend::route, and SIGKILLs
// one shard mid-run — the scenario docs/FLEET.md promises costs
// retries, not errors. Reports throughput, client-observed latency
// percentiles, and failover recovery time (the widest gap between
// consecutive successful completions after the kill: how long the
// kill was visible in the completion stream).
//
// Knobs (environment, like every other bench):
//   TAGLETS_FLEET_REQUESTS  total open-loop submissions  (default 4000)
//   TAGLETS_FLEET_RATE_RPS  submission rate              (default 2000)
//   TAGLETS_FLEET_JSON_OUT  also write summary JSON to this path
//   TAGLETS_FLEET_TRACE_OUT    enable tracing fleet-wide (the children
//                              inherit TAGLETS_TRACE=1) and write one
//                              merged Chrome trace with per-process
//                              lanes after the drill
//   TAGLETS_FLEET_METRICS_OUT  write the federated metrics snapshot
//                              (per-shard labeled) after the drill
//
// Exits non-zero when any request fails or goes unresolved: with two
// surviving shards the error budget for one SIGKILL is exactly zero.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "ensemble/servable.hpp"
#include "fleet/frontend.hpp"
#include "fleet/shard.hpp"
#include "fleet/socket.hpp"
#include "fleet/trace_merge.hpp"
#include "nn/sequential.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/atomic_io.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace taglets;
using Clock = std::chrono::steady_clock;

volatile std::sig_atomic_t g_child_term = 0;

/// Same serving-sized MLP as serve_loadgen: forward pass dominates.
ensemble::ServableModel make_model() {
  util::Rng rng(23);
  nn::Sequential encoder = nn::make_mlp({256, 512, 128}, rng);
  std::vector<std::string> names;
  for (std::size_t c = 0; c < 64; ++c) {
    std::string name = "c";  // += form: GCC 12 -Wrestrict FP (PR105329)
    name += std::to_string(c);
    names.push_back(name);
  }
  return ensemble::ServableModel(nn::Classifier(encoder, 128, 64, rng),
                                 std::move(names));
}

int run_child_shard(const char* endpoint, const char* model_path) {
  try {
    obs::set_process_name(std::string("shard ") + endpoint);
    fleet::ShardConfig config;
    config.endpoint = endpoint;
    config.server.workers = 2;
    config.server.queue_capacity = 1024;
    config.server.batching.max_batch_size = 8;
    config.server.batching.max_delay_ms = 0.3;
    fleet::ShardServer shard(ensemble::ServableModel::load(model_path),
                             config);
    shard.start();
    std::signal(SIGTERM, [](int) { g_child_term = 1; });
    while (g_child_term == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    shard.stop();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[fleet_loadgen child] %s\n", e.what());
    return 1;
  }
}

pid_t spawn_shard(const std::string& exe, const std::string& endpoint,
                  const std::string& model_path) {
  const pid_t pid = fork();
  if (pid == 0) {
    execl(exe.c_str(), exe.c_str(), "--fleet-child-shard", endpoint.c_str(),
          model_path.c_str(), static_cast<char*>(nullptr));
    _exit(127);
  }
  return pid;
}

bool wait_reachable(const std::string& endpoint) {
  const fleet::Endpoint ep = fleet::Endpoint::parse(endpoint);
  for (int attempt = 0; attempt < 400; ++attempt) {
    try {
      const fleet::Connection probe =
          fleet::Connection::connect(ep, std::chrono::milliseconds(250));
      (void)probe;
      return true;
    } catch (const fleet::SocketError&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  }
  return false;
}

double percentile(std::vector<double>& xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(idx, xs.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 4 && std::string(argv[1]) == "--fleet-child-shard") {
    return run_child_shard(argv[2], argv[3]);
  }

  const auto requests = static_cast<std::size_t>(
      util::env_long("TAGLETS_FLEET_REQUESTS", 4000));
  const double rate_rps =
      static_cast<double>(util::env_long("TAGLETS_FLEET_RATE_RPS", 2000));
  const std::string json_out =
      util::env_string("TAGLETS_FLEET_JSON_OUT", "");
  const std::string trace_out =
      util::env_string("TAGLETS_FLEET_TRACE_OUT", "");
  const std::string metrics_out =
      util::env_string("TAGLETS_FLEET_METRICS_OUT", "");

  obs::set_process_name("frontend");
  if (!trace_out.empty()) {
    // Children re-exec this binary, so the env var (not the in-process
    // flag) is what turns tracing on fleet-wide.
    setenv("TAGLETS_TRACE", "1", 1);
    obs::set_trace_enabled(true);
  }

  std::string dir = "/tmp/taglets_fleet_bench_";
  dir += std::to_string(getpid());
  (void)mkdir(dir.c_str(), 0755);
  const std::string model_path = dir + "/model.bin";
  make_model().save(model_path);

  std::cout << "##### fleet_loadgen #####\n"
            << "requests=" << requests << " rate=" << rate_rps
            << " req/s shards=3 (1 SIGKILLed mid-run)\n";

  std::vector<std::string> eps;
  std::vector<pid_t> pids;
  for (int s = 0; s < 3; ++s) {
    std::string ep = "unix:";
    ep += dir;
    ep += "/s";
    ep += std::to_string(s);
    ep += ".sock";
    eps.push_back(ep);
    pids.push_back(spawn_shard(argv[0], ep, model_path));
    if (pids.back() <= 0) {
      std::cerr << "FAIL: fork failed\n";
      return 1;
    }
  }
  for (const auto& ep : eps) {
    if (!wait_reachable(ep)) {
      std::cerr << "FAIL: shard " << ep << " never came up\n";
      return 1;
    }
  }

  fleet::FrontendConfig config;
  config.endpoint = "unix:" + dir + "/front.sock";
  for (std::size_t g = 0; g < eps.size(); ++g) {
    std::string name = "g";
    name += std::to_string(g);
    config.groups.push_back({std::move(name), {eps[g]}});
  }
  config.heartbeat_interval_ms = 25.0;
  config.health.suspect_after_ms = 150.0;
  config.health.dead_after_ms = 500.0;
  fleet::Frontend frontend(config);
  frontend.start();
  if (!frontend.wait_until_ready(3, std::chrono::seconds(10))) {
    std::cerr << "FAIL: fleet never became ready\n";
    return 1;
  }

  // Open-loop: submissions are paced by the clock, not by responses,
  // so a slow/killed shard cannot throttle the offered load.
  util::Rng rng(5);
  std::vector<std::vector<float>> inputs(64);
  for (auto& x : inputs) {
    x.resize(256);
    for (float& v : x) v = static_cast<float>(rng.normal());
  }

  std::mutex done_mu;
  std::condition_variable done_cv;
  std::size_t resolved = 0, ok = 0;
  std::vector<double> latencies_ms;
  std::vector<double> ok_done_ms;  // completion times, for recovery calc
  latencies_ms.reserve(requests);
  ok_done_ms.reserve(requests);

  const auto t_start = Clock::now();
  const auto since_start_ms = [t_start](Clock::time_point t) {
    return std::chrono::duration<double, std::milli>(t - t_start).count();
  };
  const std::size_t kill_at = requests / 3;
  double kill_ms = 0.0;
  util::Timer wall;
  for (std::size_t i = 0; i < requests; ++i) {
    if (i == kill_at) {
      kill_ms = since_start_ms(Clock::now());
      kill(pids[0], SIGKILL);
      int status = 0;
      waitpid(pids[0], &status, 0);
    }
    fleet::PredictRequest request;
    request.id = i + 1;
    request.routing_key = i;
    request.features = inputs[i % inputs.size()];
    const auto t0 = Clock::now();
    frontend.route(std::move(request), [&, t0](fleet::PredictResponse resp) {
      const auto now = Clock::now();
      std::lock_guard<std::mutex> lock(done_mu);
      ++resolved;
      latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(now - t0).count());
      if (resp.status == fleet::Status::kOk) {
        ++ok;
        ok_done_ms.push_back(since_start_ms(now));
      }
      done_cv.notify_all();
    });
    // Pace to the target rate against the wall clock (open loop).
    const double target_ms = static_cast<double>(i + 1) * 1000.0 / rate_rps;
    const double now_ms = since_start_ms(Clock::now());
    if (now_ms < target_ms) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          target_ms - now_ms));
    }
  }
  {
    std::unique_lock<std::mutex> lock(done_mu);
    const bool all = done_cv.wait_for(lock, std::chrono::seconds(30), [&] {
      return resolved == requests;
    });
    if (!all) {
      std::cerr << "FAIL: " << (requests - resolved)
                << " requests never resolved\n";
      return 1;
    }
  }
  const double seconds = wall.elapsed_seconds();

  // Recovery time: widest silence between consecutive successful
  // completions once the kill happened.
  std::sort(ok_done_ms.begin(), ok_done_ms.end());
  double recovery_ms = 0.0;
  double prev = kill_ms;
  for (const double t : ok_done_ms) {
    if (t < kill_ms) continue;
    recovery_ms = std::max(recovery_ms, t - prev);
    prev = t;
  }

  const double throughput = static_cast<double>(ok) / seconds;
  const double p50 = percentile(latencies_ms, 0.50);
  const double p99 = percentile(latencies_ms, 0.99);
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "{\"bench\":\"fleet_loadgen\",\"shards\":3,\"requests\":" << requests
     << ",\"rate_rps\":" << rate_rps << ",\"ok\":" << ok
     << ",\"failed\":" << (requests - ok)
     << ",\"throughput_rps\":" << throughput << ",\"p50_ms\":" << p50
     << ",\"p99_ms\":" << p99 << ",\"kill_at_ms\":" << kill_ms
     << ",\"failover_recovery_ms\":" << recovery_ms << "}";
  std::cout << "ok=" << ok << "/" << requests << " throughput=" << throughput
            << " req/s p50=" << p50 << "ms p99=" << p99
            << "ms failover_recovery=" << recovery_ms << "ms\n"
            << os.str() << "\n";

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << os.str() << "\n";
    std::cout << "[fleet_loadgen] wrote " << json_out << "\n";
  }

  // Observability exports run while the surviving shards are still up:
  // both pull over one-shot control connections.
  if (!trace_out.empty()) {
    const fleet::TraceExportResponse traces = frontend.collect_traces();
    std::size_t spans = 0;
    for (const auto& proc : traces.processes) spans += proc.spans.size();
    util::atomic_write_file(trace_out,
                            fleet::render_chrome_trace(traces.processes) + "\n",
                            "fleet.trace.export");
    std::cout << "[fleet_loadgen] wrote merged trace (" << spans
              << " spans, " << traces.processes.size() << " processes) to "
              << trace_out << "\n";
  }
  if (!metrics_out.empty()) {
    const fleet::MetricsResponse metrics = frontend.federated_metrics();
    std::string doc = "{\"snapshots\":[";
    for (std::size_t i = 0; i < metrics.snapshots.size(); ++i) {
      if (i > 0) doc += ",";
      doc += metrics.snapshots[i].to_json();
    }
    doc += "]}";
    util::atomic_write_file(metrics_out, doc + "\n", "fleet.metrics.export");
    std::cout << "[fleet_loadgen] wrote federated metrics ("
              << metrics.snapshots.size() << " snapshots) to " << metrics_out
              << "\n";
  }

  frontend.stop();
  for (std::size_t s = 1; s < pids.size(); ++s) {
    kill(pids[s], SIGTERM);
    int status = 0;
    waitpid(pids[s], &status, 0);
  }

  if (ok != requests) {
    std::cerr << "FAIL: " << (requests - ok)
              << " non-ok responses; the one-SIGKILL error budget is zero\n";
    return 1;
  }
  return 0;
}
