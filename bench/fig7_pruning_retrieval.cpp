// Figure 7 (Appendix A.4): how pruning changes the concepts SCADS
// retrieves for a target class. The paper shows the top-10 related
// concepts for "plastic" and "stone", highlighting which disappear at
// prune level 0 (the class and its descendants) and level 1 (the parent
// subtree) — the survivors become progressively more generic.
#include <set>

#include "bench_common.hpp"
#include "scads/selection.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace taglets;
  util::Timer timer;
  bench::print_banner("Figure 7: top related concepts under pruning");

  eval::Lab& lab = bench::shared_lab();
  auto& scads = lab.scads();
  synth::FewShotTask task = lab.task(synth::fmd_spec(), 1, 0);

  for (const std::string& target : {std::string("plastic"),
                                    std::string("stone")}) {
    // Pruned-out sets for this class alone.
    const auto id = scads.find_concept(target);
    std::vector<graph::NodeId> targets{*id};
    const auto pruned0 = scads::pruned_concepts(scads, targets, 0);
    const auto pruned1 = scads::pruned_concepts(scads, targets, 1);

    auto hits = scads::related_concepts(scads, target, 10, {});
    util::TextTable table({"Rank", "Concept", "Similarity", "Pruned at"});
    for (std::size_t r = 0; r < hits.size(); ++r) {
      const graph::NodeId node = hits[r].node;
      std::string level = "-";
      if (pruned0.count(node)) level = "level 0";
      else if (pruned1.count(node)) level = "level 1";
      table.add_row({std::to_string(r + 1), scads.graph().name(node),
                     util::format_fixed(hits[r].similarity, 3), level});
    }
    std::cout << "=== Figure 7: top-10 related concepts for '" << target
              << "' ===\n"
              << table.render() << "\n";
  }
  std::cout << "Paper's observation to check: level-0 pruning removes the "
               "class itself and derivatives; level-1 also removes close "
               "relatives, leaving only generic concepts.\n";
  bench::print_elapsed(timer);
  return 0;
}
