// Table 2: accuracy on GroceryStore (1/5-shot; the dataset's smallest
// class forbids 20 shots) and Flickr Material (1/5/20-shot), split 0.
#include "bench_common.hpp"

int main() {
  using namespace taglets;
  util::Timer timer;
  bench::print_banner("Table 2: GroceryStore / FlickrMaterial (split 0)");

  eval::Harness harness = bench::make_harness();
  eval::TableRequest request;
  request.title = "Table 2";
  request.datasets = {synth::grocery_spec(), synth::fmd_spec()};
  request.shots = {1, 5, 20};
  request.split = 0;
  request.rows = eval::standard_table_rows();
  std::cout << eval::render_accuracy_table(harness, request) << "\n";
  bench::print_elapsed(timer);
  return 0;
}
