// Budget ablation (Section 3.1: "SCADS provides flexibility for compute
// budgets by allowing users to fix the size of the selected auxiliary
// data R by setting threshold parameters for the number of task-related
// concepts N and the number of associated examples K"). Sweeps N and K
// on the 1-shot OfficeHome-Product task and reports TAGLETS accuracy and
// training wall-clock, showing the accuracy/compute trade-off.
#include "bench_common.hpp"
#include "nn/trainer.hpp"
#include "taglets/controller.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace taglets;
  util::Timer timer;
  bench::print_banner("Budget ablation: selection thresholds N x K");

  eval::Harness harness = bench::make_harness();
  eval::Lab& lab = harness.lab();
  auto task = lab.task(synth::officehome_product_spec(), /*shots=*/1, 0);
  Controller controller(&lab.scads(), &lab.zoo(), &lab.zsl_engine());

  util::TextTable table({"N (concepts/class)", "K (images/concept)", "|R|",
                         "Accuracy (%)", "Train seconds"});
  for (std::size_t n : {1u, 2u, 3u}) {
    for (std::size_t k : {6u, 12u, 24u}) {
      SystemConfig config =
          harness.system_config(backbone::Kind::kRn50S, -1, 31);
      config.selection.related_per_class = n;
      config.selection.images_per_concept = k;
      SystemResult result = controller.run(task, config);
      tensor::Tensor logits =
          result.end_model.model().logits(task.test_inputs, false);
      table.add_row({std::to_string(n), std::to_string(k),
                     std::to_string(result.selection.data.size()),
                     util::format_fixed(
                         100.0 * nn::accuracy(logits, task.test_labels), 2),
                     util::format_fixed(result.train_seconds, 1)});
    }
  }
  std::cout << table.render()
            << "\nPaper's claim to check: training cost scales with N*K "
               "(not with the total auxiliary pool size), and moderate "
               "budgets already capture most of the accuracy.\n";
  bench::print_elapsed(timer);
  return 0;
}
