// Systems microbenches (google-benchmark) backing the paper's
// systems-level arguments:
//  * SCADS graph-based selection vs. pairwise visual-similarity
//    selection (Section 3.1: "visual pairwise-comparisons become
//    intractable ... our approach is efficient and scales well"),
//  * single servable end-model inference vs. serving the whole taglet
//    ensemble (challenge 3: SLAs need a single compact model),
//  * core tensor/retrofit kernels.
#include <mutex>

#include <benchmark/benchmark.h>

#include "ensemble/ensemble.hpp"
#include "ensemble/servable.hpp"
#include "graph/retrofit.hpp"
#include "modules/module.hpp"
#include "nn/classifier.hpp"
#include "nn/sequential.hpp"
#include "scads/scads.hpp"
#include "scads/selection.hpp"
#include "obs/trace.hpp"
#include "synth/split.hpp"
#include "synth/tasks.hpp"
#include "tensor/backend.hpp"
#include "tensor/ops.hpp"
#include "tensor/quant.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/sync.hpp"
#include "util/timer.hpp"

namespace {

using namespace taglets;

synth::World& bench_world() {
  static synth::World world(synth::default_world_config(7));
  return world;
}

scads::Scads& bench_scads() {
  static std::unique_ptr<scads::Scads> instance = [] {
    auto& world = bench_world();
    auto s = std::make_unique<scads::Scads>(world.graph(), world.taxonomy(),
                                            world.scads_embeddings());
    util::Rng rng(1);
    s->install_dataset(
        world.make_auxiliary_corpus(world.auxiliary_concepts(), 8, rng));
    return s;
  }();
  return *instance;
}

synth::FewShotTask& bench_task() {
  static synth::FewShotTask task = [] {
    synth::Dataset pool = synth::build_task_pool(
        bench_world(), synth::officehome_product_spec(), 11);
    return synth::make_few_shot_task(pool, 1, 10, 101);
  }();
  return task;
}

// ---------------------------------------------------------- tensor core

void BM_Matmul(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  tensor::Tensor a = tensor::Tensor::zeros(n, n);
  tensor::Tensor b = tensor::Tensor::zeros(n, n);
  for (float& x : a.data()) x = static_cast<float>(rng.normal());
  for (float& x : b.data()) x = static_cast<float>(rng.normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

// ------------------------------------------------- parallel scaling
// threads=1 vs threads=N through the shared util::Parallel layer; the
// same comparison works process-wide via TAGLETS_THREADS. Outputs are
// bitwise-identical at every setting (see util_test), so the only
// difference the threads argument makes is wall-clock time.

nn::Classifier make_serving_model(std::size_t classes);  // defined below

tensor::Tensor bench_random_matrix(std::size_t rows, std::size_t cols,
                                   std::uint64_t seed) {
  util::Rng rng(seed);
  tensor::Tensor t = tensor::Tensor::zeros(rows, cols);
  for (float& x : t.data()) x = static_cast<float>(rng.normal());
  return t;
}

/// Swap the global pool for the duration of one benchmark run.
class BenchParallelOverride {
 public:
  explicit BenchParallelOverride(util::Parallel* pool)
      : prev_(util::Parallel::exchange_global(pool)) {}
  ~BenchParallelOverride() { util::Parallel::exchange_global(prev_); }

 private:
  util::Parallel* prev_;
};

void BM_MatmulThreads(benchmark::State& state) {
  const std::size_t n = 512;
  util::Parallel pool(static_cast<std::size_t>(state.range(0)));
  BenchParallelOverride guard(&pool);
  tensor::Tensor a = bench_random_matrix(n, n, 3);
  tensor::Tensor b = bench_random_matrix(n, n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_MatmulThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// ------------------------------------------------------ SIMD backends
// scalar vs the best native backend over the same kernels, pinned to
// the serial pool so the comparison isolates the inner loops.
// items_per_second is FLOP/s (2*n^3 per product); the committed
// BENCH_micro_core.json trajectory tracks the native/scalar ratio
// (>= 2x expected on AVX2 hardware).

/// Force one backend for the duration of a benchmark run (nullptr =
/// re-resolve the best native backend from the environment).
class BenchBackendOverride {
 public:
  explicit BenchBackendOverride(const tensor::backend::Kernels* kernels)
      : prev_(tensor::backend::exchange_active(kernels)) {}
  ~BenchBackendOverride() { tensor::backend::exchange_active(prev_); }

 private:
  const tensor::backend::Kernels* prev_;
};

void run_matmul_backend(benchmark::State& state,
                        const tensor::backend::Kernels* kernels) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Parallel pool(1);
  BenchParallelOverride pool_guard(&pool);
  BenchBackendOverride backend_guard(kernels);
  tensor::Tensor a = bench_random_matrix(n, n, 3);
  tensor::Tensor b = bench_random_matrix(n, n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}

void BM_MatmulBackendScalar(benchmark::State& state) {
  run_matmul_backend(state, tensor::backend::lookup("scalar"));
}
BENCHMARK(BM_MatmulBackendScalar)->Arg(128)->Arg(256)->Arg(512);

void BM_MatmulBackendNative(benchmark::State& state) {
  run_matmul_backend(state, nullptr);
}
BENCHMARK(BM_MatmulBackendNative)->Arg(128)->Arg(256)->Arg(512);

void run_matmul_nt_backend(benchmark::State& state,
                           const tensor::backend::Kernels* kernels) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Parallel pool(1);
  BenchParallelOverride pool_guard(&pool);
  BenchBackendOverride backend_guard(kernels);
  tensor::Tensor a = bench_random_matrix(n, n, 5);
  tensor::Tensor b = bench_random_matrix(n, n, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul_nt(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}

void BM_MatmulNtBackendScalar(benchmark::State& state) {
  run_matmul_nt_backend(state, tensor::backend::lookup("scalar"));
}
BENCHMARK(BM_MatmulNtBackendScalar)->Arg(128)->Arg(256);

void BM_MatmulNtBackendNative(benchmark::State& state) {
  run_matmul_nt_backend(state, nullptr);
}
BENCHMARK(BM_MatmulNtBackendNative)->Arg(128)->Arg(256);

void run_softmax_backend(benchmark::State& state,
                         const tensor::backend::Kernels* kernels) {
  util::Parallel pool(1);
  BenchParallelOverride pool_guard(&pool);
  BenchBackendOverride backend_guard(kernels);
  tensor::Tensor logits = bench_random_matrix(256, 65, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::softmax(logits));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(logits.size()));
}

void BM_SoftmaxBackendScalar(benchmark::State& state) {
  run_softmax_backend(state, tensor::backend::lookup("scalar"));
}
BENCHMARK(BM_SoftmaxBackendScalar);

void BM_SoftmaxBackendNative(benchmark::State& state) {
  run_softmax_backend(state, nullptr);
}
BENCHMARK(BM_SoftmaxBackendNative);

// Weight-only int8 GEMM (the serving path) vs the float GEMM it
// replaces, at a serving-sized batch of 16 rows.
void BM_Int8Matmul(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Parallel pool(1);
  BenchParallelOverride pool_guard(&pool);
  tensor::Tensor x = bench_random_matrix(16, n, 7);
  tensor::Tensor w = bench_random_matrix(n, n, 8);
  const tensor::QuantizedMatrix q = tensor::quantize_rows(w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul_quant(x, q));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * 16 * n * n));
}
BENCHMARK(BM_Int8Matmul)->Arg(128)->Arg(256);

void BM_EnsembleProbaThreads(benchmark::State& state) {
  util::Parallel pool(static_cast<std::size_t>(state.range(0)));
  BenchParallelOverride guard(&pool);
  std::vector<modules::Taglet> taglets;
  for (int t = 0; t < 4; ++t) {
    taglets.emplace_back("taglet-" + std::to_string(t),
                         make_serving_model(65));
  }
  util::Rng rng(4);
  tensor::Tensor batch =
      tensor::Tensor::zeros(256, bench_world().pixel_dim());
  for (float& x : batch.data()) x = static_cast<float>(rng.normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ensemble::ensemble_proba(taglets, batch));
  }
}
BENCHMARK(BM_EnsembleProbaThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_SoftmaxRows(benchmark::State& state) {
  util::Rng rng(3);
  tensor::Tensor logits = tensor::Tensor::zeros(256, 65);
  for (float& x : logits.data()) x = static_cast<float>(rng.normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::softmax(logits));
  }
}
BENCHMARK(BM_SoftmaxRows);

// ------------------------------------------------- auxiliary selection

void BM_ScadsGraphSelection(benchmark::State& state) {
  auto& task = bench_task();
  scads::SelectionConfig config;
  config.seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scads::select_auxiliary(bench_scads(), task, config));
  }
}
BENCHMARK(BM_ScadsGraphSelection);

/// The alternative SCADS argues against: score every auxiliary example
/// by visual similarity to the labeled shots, then take the top images.
void BM_VisualSimilaritySelection(benchmark::State& state) {
  auto& task = bench_task();
  auto& s = bench_scads();
  const auto concepts = s.concepts_with_data();
  for (auto _ : state) {
    std::vector<std::pair<float, scads::ExampleRef>> scored;
    util::Rng rng(1);
    for (graph::NodeId c : concepts) {
      for (const auto& ref : s.sample_examples(c, 8, rng)) {
        auto pixels = s.example_pixels(ref);
        float best = -2.0f;
        for (std::size_t i = 0; i < task.labeled_inputs.rows(); ++i) {
          best = std::max(best, tensor::cosine_similarity(
                                    pixels, task.labeled_inputs.row(i)));
        }
        scored.emplace_back(best, ref);
      }
    }
    std::partial_sort(scored.begin(),
                      scored.begin() + std::min<std::size_t>(1560, scored.size()),
                      scored.end(),
                      [](const auto& a, const auto& b) { return a.first > b.first; });
    benchmark::DoNotOptimize(scored);
  }
}
BENCHMARK(BM_VisualSimilaritySelection);

// ------------------------------------------------------------ retrofit

void BM_RetrofitEmbeddings(benchmark::State& state) {
  auto& world = bench_world();
  graph::RetrofitConfig config;
  config.iterations = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::retrofit_embeddings(
        world.graph(), world.word_vectors(), config));
  }
}
BENCHMARK(BM_RetrofitEmbeddings)->Arg(5)->Arg(15);

// ------------------------------------------------------------- serving

nn::Classifier make_serving_model(std::size_t classes) {
  util::Rng rng(9);
  auto& world = bench_world();
  nn::Sequential encoder = nn::make_mlp({world.pixel_dim(), 160, 32}, rng);
  encoder.add(std::make_unique<nn::ReLU>());
  return nn::Classifier(encoder, 32, classes, rng);
}

void BM_ServeEndModel(benchmark::State& state) {
  nn::Classifier model = make_serving_model(65);
  util::Rng rng(4);
  tensor::Tensor example =
      bench_world().sample_image(10, synth::Domain::kProduct, rng);
  tensor::Tensor batch = example.reshape(1, example.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_proba(batch));
  }
}
BENCHMARK(BM_ServeEndModel);

/// Same single-example serving loop as BM_ServeEndModel, but through
/// the int8-quantized ServableModel path (weight-only quantization).
void BM_ServeEndModelInt8(benchmark::State& state) {
  std::vector<std::string> names;
  for (int i = 0; i < 65; ++i) names.push_back("class-" + std::to_string(i));
  ensemble::ServableModel model(make_serving_model(65), std::move(names));
  model.set_precision(ensemble::Precision::kInt8);
  util::Rng rng(4);
  tensor::Tensor example =
      bench_world().sample_image(10, synth::Domain::kProduct, rng);
  tensor::Tensor batch = example.reshape(1, example.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_proba(batch));
  }
}
BENCHMARK(BM_ServeEndModelInt8);

void BM_ServeFullEnsemble(benchmark::State& state) {
  std::vector<nn::Classifier> ensemble;
  for (int i = 0; i < 4; ++i) ensemble.push_back(make_serving_model(65));
  util::Rng rng(4);
  tensor::Tensor example =
      bench_world().sample_image(10, synth::Domain::kProduct, rng);
  tensor::Tensor batch = example.reshape(1, example.size());
  for (auto _ : state) {
    tensor::Tensor sum;
    for (auto& model : ensemble) {
      tensor::Tensor p = model.predict_proba(batch);
      if (sum.empty()) sum = std::move(p);
      else tensor::add_scaled_inplace(sum, p, 1.0f);
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_ServeFullEnsemble);

// -------------------------------------------------------- observability

/// Guard for the LatencyRecorder percentile fix: a stats snapshot reads
/// several percentiles, which used to re-sort all samples per call.
/// With the sorted cache this loop is O(1) per read after the first.
void BM_LatencyRecorderPercentiles(benchmark::State& state) {
  util::LatencyRecorder recorder;
  util::Rng rng(17);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    recorder.record_ms(rng.uniform() * 50.0);
  }
  const double ps[] = {50, 95, 99};
  for (auto _ : state) {
    benchmark::DoNotOptimize(recorder.percentiles_ms(ps));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 3);
}
BENCHMARK(BM_LatencyRecorderPercentiles)->Arg(1000)->Arg(100000);

/// Cost of a TAGLETS_TRACE_SCOPE when tracing is off: the acceptance
/// bar for instrumenting hot paths is that this stays at ~one branch.
void BM_TraceScopeDisabled(benchmark::State& state) {
  obs::set_trace_enabled(false);
  for (auto _ : state) {
    TAGLETS_TRACE_SCOPE("bench.noop");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TraceScopeDisabled);

// ------------------------------------------------------------ contracts

/// Guard for the TAGLETS_DCHECK* release contract: in release builds
/// (TAGLETS_DCHECK_ENABLED == 0) the loop body must cost the same as
/// BM_CheckBaseline — the condition is type-checked but never
/// evaluated, so a DCHECK in a hot loop is free.
void BM_CheckBaseline(benchmark::State& state) {
  std::size_t i = 0;
  for (auto _ : state) {
    ++i;
    benchmark::DoNotOptimize(i);
  }
}
BENCHMARK(BM_CheckBaseline);

void BM_CheckDisabled(benchmark::State& state) {
  std::size_t i = 0;
  for (auto _ : state) {
    ++i;
    TAGLETS_DCHECK_LT(i, i + 1);
    TAGLETS_DCHECK(i != 0, "loop counter wrapped at ", i);
    benchmark::DoNotOptimize(i);
  }
}
BENCHMARK(BM_CheckDisabled);

/// The always-on tier for comparison: one predictable branch per check.
void BM_CheckEnabled(benchmark::State& state) {
  std::size_t i = 0;
  for (auto _ : state) {
    ++i;
    TAGLETS_CHECK_LT(i, i + 1);
    TAGLETS_CHECK(i != 0, "loop counter wrapped at ", i);
    benchmark::DoNotOptimize(i);
  }
}
BENCHMARK(BM_CheckEnabled);

// util::Mutex vs the std::mutex it wraps. Benchmarks build with NDEBUG,
// which compiles the lock-order checker out entirely, so these two must
// read the same — the evidence behind sync.hpp's zero-release-overhead
// claim. In a Debug build the gap is the checker's bookkeeping cost.
void BM_StdMutexLockUnlock(benchmark::State& state) {
  std::mutex mu;
  for (auto _ : state) {
    mu.lock();
    benchmark::DoNotOptimize(&mu);
    mu.unlock();
  }
}
BENCHMARK(BM_StdMutexLockUnlock);

void BM_SyncMutexLockUnlock(benchmark::State& state) {
  util::Mutex mu("bench.sync", util::lockrank::kTest);
  for (auto _ : state) {
    mu.lock();
    benchmark::DoNotOptimize(&mu);
    mu.unlock();
  }
}
BENCHMARK(BM_SyncMutexLockUnlock);

void BM_StdScopedLock(benchmark::State& state) {
  std::mutex mu;
  for (auto _ : state) {
    std::lock_guard<std::mutex> lock(mu);
    benchmark::DoNotOptimize(&mu);
  }
}
BENCHMARK(BM_StdScopedLock);

void BM_SyncScopedLock(benchmark::State& state) {
  util::Mutex mu("bench.sync_scoped", util::lockrank::kTest);
  for (auto _ : state) {
    util::MutexLock lock(mu);
    benchmark::DoNotOptimize(&mu);
  }
}
BENCHMARK(BM_SyncScopedLock);

}  // namespace

BENCHMARK_MAIN();
