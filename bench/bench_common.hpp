// Shared setup for the experiment benches. Every bench builds (or loads
// from the disk cache) the same lab environment the paper's evaluation
// fixes: the synthetic world, SCADS with ImageNet-21k-S installed, the
// two pretrained backbones, and the ZSL-KG engine. Knobs:
//   TAGLETS_SEEDS   training seeds per cell (default 3, as in the paper)
//   TAGLETS_FAST=1  shrink every training schedule to ~1/3
//   TAGLETS_SPLITS  comma-free highest split index for the split benches
#pragma once

#include <iostream>

#include "eval/harness.hpp"
#include "eval/lab.hpp"
#include "eval/reporting.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

namespace taglets::bench {

inline eval::Lab& shared_lab() {
  static eval::Lab lab;
  return lab;
}

inline eval::Harness make_harness() {
  return eval::Harness(shared_lab());
}

/// Banner with configuration so recorded outputs are self-describing.
inline void print_banner(const std::string& name) {
  std::cout << "##### " << name << " #####\n"
            << "seeds=" << util::env_long("TAGLETS_SEEDS", 3)
            << " fast=" << (util::env_flag("TAGLETS_FAST") ? 1 : 0) << "\n"
            << std::flush;
}

inline void print_elapsed(const util::Timer& timer) {
  std::cout << "[bench] elapsed " << timer.elapsed_seconds() << "s\n"
            << std::flush;
}

}  // namespace taglets::bench
