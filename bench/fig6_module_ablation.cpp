// Figure 6: distribution of the change in ensemble accuracy when one
// module is removed from TAGLETS, over all datasets and both backbones
// in the 1- and 5-shot settings (split 0). The paper's finding: cutting
// any module reduces accuracy in at least half of the cases.
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace taglets;
  util::Timer timer;
  bench::print_banner("Figure 6: leave-one-module-out ablation");

  eval::Harness harness = bench::make_harness();
  std::map<std::string, std::vector<double>> deltas;

  const std::vector<synth::TaskSpec> datasets = synth::all_task_specs();
  const std::vector<backbone::Kind> backbones{backbone::Kind::kRn50S,
                                              backbone::Kind::kBitS};
  for (const auto& spec : datasets) {
    for (std::size_t shots : {1u, 5u}) {
      for (backbone::Kind kind : backbones) {
        for (std::size_t seed = 0; seed < harness.seeds(); ++seed) {
          auto result = harness.run_leave_one_out(spec, shots, 0, kind, seed);
          for (const auto& [module, delta] : result) {
            deltas[module].push_back(delta);
          }
        }
      }
    }
  }

  util::TextTable table({"Module removed", "Mean delta (pts)", "Median",
                         "Hurts in (%)", "Samples"});
  for (const auto& [module, values] : deltas) {
    std::size_t hurt = 0;
    for (double d : values) {
      if (d < 0.0) ++hurt;
    }
    table.add_row(
        {module, util::format_fixed(util::mean(values), 2),
         util::format_fixed(util::median(values), 2),
         util::format_fixed(100.0 * static_cast<double>(hurt) /
                                static_cast<double>(values.size()),
                            1),
         std::to_string(values.size())});
  }
  std::cout << "=== Figure 6: ensemble accuracy delta when removing a module "
               "(all datasets x backbones, 1- and 5-shot, split 0) ===\n"
            << table.render() << "\n"
            << "Paper's finding to check: every module hurts (delta < 0) in "
               ">= 50% of cases when removed.\n";
  bench::print_elapsed(timer);
  return 0;
}
