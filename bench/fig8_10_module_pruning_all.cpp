// Figures 8-10: the Figure 4 per-module pruning analysis repeated on
// OfficeHome-Clipart, FlickrMaterial, and GroceryStore for splits 0-2.
// TAGLETS_SPLITS bounds the split count (default all 3).
#include "bench_common.hpp"

int main() {
  using namespace taglets;
  util::Timer timer;
  bench::print_banner("Figures 8-10: per-module pruning, remaining datasets");

  const std::size_t split_count = static_cast<std::size_t>(
      util::env_long("TAGLETS_SPLITS", 3));
  eval::Harness harness = bench::make_harness();
  const std::vector<synth::TaskSpec> datasets{
      synth::officehome_clipart_spec(), synth::fmd_spec(),
      synth::grocery_spec()};
  for (std::size_t split = 0; split < split_count; ++split) {
    std::cout << "----- Figure " << 8 + split << " (split " << split
              << ") -----\n";
    for (const auto& spec : datasets) {
      std::cout << eval::render_module_pruning_figure(harness, spec, split)
                << "\n"
                << std::flush;
    }
  }
  bench::print_elapsed(timer);
  return 0;
}
