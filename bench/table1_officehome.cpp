// Table 1: accuracy of TAGLETS and baselines on OfficeHome-Product and
// OfficeHome-Clipart (split 0) at 1/5/20 shots, on both backbones, with
// TAGLETS pruning rows. Prints the paper-format table plus a shape
// check of TAGLETS minus the best baseline per column.
#include "bench_common.hpp"

int main() {
  using namespace taglets;
  util::Timer timer;
  bench::print_banner("Table 1: OfficeHome-Product / OfficeHome-Clipart (split 0)");

  eval::Harness harness = bench::make_harness();
  eval::TableRequest request;
  request.title = "Table 1";
  request.datasets = {synth::officehome_product_spec(),
                      synth::officehome_clipart_spec()};
  request.shots = {1, 5, 20};
  request.split = 0;
  request.rows = eval::standard_table_rows();
  std::cout << eval::render_accuracy_table(harness, request) << "\n";
  bench::print_elapsed(timer);
  return 0;
}
