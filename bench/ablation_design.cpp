// Ablations of the design choices DESIGN.md calls out:
//   (a) soft vs. hard pseudo-labels in the distillation stage,
//   (b) embedding centering in retrofitting (selection quality),
//   (c) SimCLRv2 from scratch vs. fine-tuning a pretrained backbone
//       (the paper's reason for excluding SimCLRv2 from its tables),
//   (d) ensemble size: accuracy as modules are added one by one.
#include <cmath>

#include "baselines/finetune.hpp"
#include "baselines/simclr.hpp"
#include "bench_common.hpp"
#include "ensemble/ensemble.hpp"
#include "graph/retrofit.hpp"
#include "tensor/ops.hpp"
#include "nn/trainer.hpp"
#include "scads/selection.hpp"
#include "taglets/controller.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

using namespace taglets;

namespace {

void soft_vs_hard(eval::Harness& harness) {
  std::cout << "--- (a) soft vs hard pseudo-labels in distillation "
               "(OH-Product, RN50) ---\n";
  eval::Lab& lab = harness.lab();
  util::TextTable table({"Shots", "Soft targets", "Hard targets"});
  for (std::size_t shots : {1u, 5u}) {
    std::vector<double> soft_acc, hard_acc;
    for (std::size_t seed = 0; seed < harness.seeds(); ++seed) {
      auto task = lab.task(synth::officehome_product_spec(), shots, 0);
      Controller controller(&lab.scads(), &lab.zoo(), &lab.zsl_engine());
      for (bool soft : {true, false}) {
        SystemConfig config = harness.system_config(
            backbone::Kind::kRn50S, -1, 1000 + seed);
        config.end_model.soft_targets = soft;
        SystemResult result = controller.run(task, config);
        tensor::Tensor logits =
            result.end_model.model().logits(task.test_inputs, false);
        const double acc = 100.0 * nn::accuracy(logits, task.test_labels);
        (soft ? soft_acc : hard_acc).push_back(acc);
      }
    }
    table.add_row({std::to_string(shots),
                   util::summarize(soft_acc).to_string(),
                   util::summarize(hard_acc).to_string()});
  }
  std::cout << table.render() << "\n";
}

void retrofit_centering(eval::Harness& harness) {
  std::cout << "--- (b) retrofit centering: similarity-vs-distance "
               "correlation over named concepts ---\n";
  const synth::World& world = harness.lab().world();
  for (bool center : {true, false}) {
    graph::RetrofitConfig config;
    config.center = center;
    tensor::Tensor embeddings =
        graph::retrofit_embeddings(world.graph(), world.word_vectors(), config);
    // Correlate cosine similarity with negative latent distance over
    // random concept pairs: higher = better selection signal.
    util::Rng rng(5);
    std::vector<double> sims, neg_dists;
    for (int pair = 0; pair < 4000; ++pair) {
      const std::size_t a = rng.uniform_index(world.config().concept_count);
      const std::size_t b = rng.uniform_index(world.config().concept_count);
      if (a == b) continue;
      sims.push_back(
          tensor::cosine_similarity(embeddings.row(a), embeddings.row(b)));
      auto pa = world.prototype(a);
      auto pb = world.prototype(b);
      double d = 0.0;
      for (std::size_t k = 0; k < pa.size(); ++k) {
        d += (pa[k] - pb[k]) * (pa[k] - pb[k]);
      }
      neg_dists.push_back(-std::sqrt(d));
    }
    std::cout << "  center=" << (center ? "on " : "off")
              << "  pearson(similarity, -latent distance) = "
              << util::format_fixed(util::pearson(sims, neg_dists), 3) << "\n";
  }
  std::cout << "\n";
}

void simclr_vs_finetune(eval::Harness& harness) {
  std::cout << "--- (c) SimCLRv2 (from scratch) vs fine-tuning a pretrained "
               "backbone (OH-Product, 5-shot) ---\n";
  eval::Lab& lab = harness.lab();
  std::vector<double> simclr_acc, ft_acc;
  for (std::size_t seed = 0; seed < harness.seeds(); ++seed) {
    auto task = lab.task(synth::officehome_product_spec(), 5, 0);
    const auto& bb = lab.zoo().get(backbone::Kind::kRn50S);
    baselines::SimClr simclr;
    nn::Classifier a = simclr.train(task, bb, 2000 + seed,
                                    harness.epoch_scale());
    simclr_acc.push_back(100.0 * nn::evaluate_accuracy(a, task.test_inputs,
                                                       task.test_labels));
    baselines::FineTune fine_tune;
    nn::Classifier b = fine_tune.train(task, bb, 2000 + seed,
                                       harness.epoch_scale());
    ft_acc.push_back(100.0 * nn::evaluate_accuracy(b, task.test_inputs,
                                                   task.test_labels));
  }
  std::cout << "  simclrv2:    " << util::summarize(simclr_acc).to_string()
            << "\n  fine-tuning: " << util::summarize(ft_acc).to_string()
            << "\n  (the paper excludes SimCLRv2 because it deteriorates at "
               "this data scale)\n\n";
}

void ensemble_size(eval::Harness& harness) {
  std::cout << "--- (d) ensemble size: accuracy as modules are added "
               "(OH-Product, 1-shot, RN50) ---\n";
  eval::Lab& lab = harness.lab();
  auto task = lab.task(synth::officehome_product_spec(), 1, 0);
  Controller controller(&lab.scads(), &lab.zoo(), &lab.zsl_engine());
  SystemConfig config = harness.system_config(backbone::Kind::kRn50S, -1, 77);
  scads::Selection selection = controller.select(task, config);
  auto taglets_vec = controller.train_taglets(task, selection, config);

  util::TextTable table({"Modules in ensemble", "Accuracy (%)",
                         "Pairwise agreement", "Pseudo-label confidence"});
  std::vector<modules::Taglet> subset;
  for (auto& taglet : taglets_vec) {
    subset.push_back(taglet);
    const double acc = 100.0 * ensemble::ensemble_accuracy(
                                   subset, task.test_inputs, task.test_labels);
    const auto stats =
        ensemble::pseudo_label_stats(subset, task.unlabeled_inputs);
    std::string names;
    for (const auto& t : subset) names += t.name() + " ";
    table.add_row({names, util::format_fixed(acc, 2),
                   util::format_fixed(stats.inter_taglet_agreement, 3),
                   util::format_fixed(stats.mean_confidence, 3)});
  }
  std::cout << table.render()
            << "Low pairwise agreement with rising ensemble accuracy is the "
               "diversity the paper credits for robustness (Sect. 4.4.3).\n\n";
}

}  // namespace

int main() {
  util::Timer timer;
  bench::print_banner("Design ablations (soft targets, centering, SimCLR, ensemble size)");
  eval::Harness harness = bench::make_harness();
  soft_vs_hard(harness);
  retrofit_centering(harness);
  simclr_vs_finetune(harness);
  ensemble_size(harness);
  bench::print_elapsed(timer);
  return 0;
}
