// Figure 4: accuracy of each individual module at pruning levels
// none/0/1 for 1/5/20 labeled examples on OfficeHome-Product (ResNet-50
// backbone). The paper's findings: modules benefit from task-related
// auxiliary data, with diminishing gains as labels grow, and the ZSL-KG
// module is invariant to pruning (it is not re-trained).
#include "bench_common.hpp"

int main() {
  using namespace taglets;
  util::Timer timer;
  bench::print_banner("Figure 4: per-module accuracy vs pruning (OH-Product)");

  eval::Harness harness = bench::make_harness();
  std::cout << eval::render_module_pruning_figure(
                   harness, synth::officehome_product_spec(), /*split=*/0)
            << "\n";
  bench::print_elapsed(timer);
  return 0;
}
