// Figures 11-13: the Figure 5 ensemble / end-model gain analysis on
// OfficeHome-Clipart, FlickrMaterial, and GroceryStore for splits 0-2.
#include "bench_common.hpp"

int main() {
  using namespace taglets;
  util::Timer timer;
  bench::print_banner("Figures 11-13: ensemble gains, remaining datasets");

  const std::size_t split_count = static_cast<std::size_t>(
      util::env_long("TAGLETS_SPLITS", 3));
  eval::Harness harness = bench::make_harness();
  const std::vector<synth::TaskSpec> datasets{
      synth::officehome_clipart_spec(), synth::fmd_spec(),
      synth::grocery_spec()};
  for (std::size_t split = 0; split < split_count; ++split) {
    std::cout << "----- Figure " << 11 + split << " (split " << split
              << ") -----\n";
    for (const auto& spec : datasets) {
      std::cout << eval::render_ensemble_gain_figure(harness, spec, split)
                << "\n"
                << std::flush;
    }
  }
  bench::print_elapsed(timer);
  return 0;
}
