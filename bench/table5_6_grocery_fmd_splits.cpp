// Tables 5 and 6: the GroceryStore / FlickrMaterial experiments on
// splits 1 and 2 (Appendix A.6).
#include "bench_common.hpp"

int main() {
  using namespace taglets;
  util::Timer timer;
  bench::print_banner("Tables 5-6: GroceryStore / FlickrMaterial splits 1 and 2");

  eval::Harness harness = bench::make_harness();
  for (std::size_t split : {1u, 2u}) {
    eval::TableRequest request;
    request.title = split == 1 ? "Table 5 (split 1)" : "Table 6 (split 2)";
    request.datasets = {synth::grocery_spec(), synth::fmd_spec()};
    request.shots = {1, 5, 20};
    request.split = split;
    request.rows = eval::standard_table_rows();
    std::cout << eval::render_accuracy_table(harness, request) << "\n"
              << std::flush;
  }
  bench::print_elapsed(timer);
  return 0;
}
