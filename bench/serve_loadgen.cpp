// Serving load generator: drives the in-process dynamic-batching
// server (src/serve/) with closed-loop clients at 1/2/4 worker threads
// and records throughput and tail latency. The multi-process serving
// tier has its own bench (fleet_loadgen.cpp) layered on the same
// ServerStats surface; this one isolates the single-server core. The shared util::Parallel
// pool is pinned to serial for the whole run so the worker count is the
// *only* source of parallelism — the worker-scaling curve is then a
// clean property of the serve layer, not of how many cores the GEMMs
// already grabbed.
//
// Knobs (environment, like every other bench):
//   TAGLETS_SERVE_REQUESTS  requests per worker setting   (default 3000)
//   TAGLETS_SERVE_CLIENTS   closed-loop client threads    (default 16)
//   TAGLETS_SERVE_BATCH     max micro-batch size          (default 8)
//   TAGLETS_SERVE_REPEATS   runs per setting, best kept   (default 2)
//   TAGLETS_SERVE_JSON_OUT  also write the combined JSON to this path
//
// The whole worker sweep runs twice, once per serving precision
// (float32 and int8 — see ensemble::ServableModel::set_precision), so
// the quantized path's throughput/latency is tracked alongside the
// float path it must not regress.
//
// Emits one machine-readable JSON line per (precision, workers) setting
// ({"bench":"serve_loadgen","precision":...,"workers":...,
// "throughput_rps":...,...}) so future PRs can track the serving
// trajectory, and exits non-zero if 4 workers fail to beat 1 worker (on
// the float32 sweep) or any response is lost. The scaling
// assertion requires >= 4 hardware threads; on smaller machines (where
// extra workers can only time-slice one core) it is reported but not
// enforced — the zero-lost-responses invariant always is.
#include <array>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "ensemble/servable.hpp"
#include "nn/sequential.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace {

using namespace taglets;
using tensor::Tensor;

/// A serving-sized MLP classifier: big enough that the forward pass —
/// not queue bookkeeping — dominates per-request cost.
ensemble::ServableModel make_model() {
  util::Rng rng(23);
  nn::Sequential encoder = nn::make_mlp({256, 512, 128}, rng);
  std::vector<std::string> names;
  for (std::size_t c = 0; c < 64; ++c) {
    std::string name = "c";  // += form: GCC 12 -Wrestrict FP (PR105329)
    name += std::to_string(c);
    names.push_back(name);
  }
  return ensemble::ServableModel(nn::Classifier(encoder, 128, 64, rng),
                                 std::move(names));
}

struct RunResult {
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_batch = 0.0;
  std::size_t ok = 0;
  std::size_t responded = 0;
};

RunResult run_once(const ensemble::ServableModel& model, std::size_t workers,
                   std::size_t requests, std::size_t clients,
                   std::size_t max_batch,
                   const std::vector<Tensor>& inputs) {
  serve::ServerConfig config;
  config.workers = workers;
  config.queue_capacity = std::max<std::size_t>(256, 2 * clients);
  config.batching.max_batch_size = max_batch;
  config.batching.max_delay_ms = 0.5;  // clamped to 0 by the serial pool
  serve::Server server(model, config);
  server.start();

  std::vector<std::size_t> ok_counts(clients, 0);
  std::vector<std::size_t> responded_counts(clients, 0);
  util::Timer wall;
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (std::size_t i = c; i < requests; i += clients) {
        const serve::Response response = server.predict(inputs[i]);
        ++responded_counts[c];
        if (response.ok()) ++ok_counts[c];
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = wall.elapsed_seconds();
  server.stop();

  RunResult result;
  for (std::size_t c = 0; c < clients; ++c) {
    result.ok += ok_counts[c];
    result.responded += responded_counts[c];
  }
  result.throughput_rps = static_cast<double>(result.ok) / seconds;
  const auto stats = server.stats().snapshot();
  result.p50_ms = stats.latency_p50_ms;
  result.p99_ms = stats.latency_p99_ms;
  result.mean_batch = stats.mean_batch_size;
  return result;
}

std::string json_line(const char* precision, std::size_t workers,
                      std::size_t requests, std::size_t clients,
                      std::size_t max_batch, const RunResult& r) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "{\"bench\":\"serve_loadgen\",\"precision\":\"" << precision
     << "\",\"workers\":" << workers
     << ",\"requests\":" << requests << ",\"clients\":" << clients
     << ",\"max_batch\":" << max_batch
     << ",\"throughput_rps\":" << r.throughput_rps
     << ",\"p50_ms\":" << r.p50_ms << ",\"p99_ms\":" << r.p99_ms
     << ",\"mean_batch_size\":" << r.mean_batch << ",\"ok\":" << r.ok
     << ",\"responded\":" << r.responded << "}";
  return os.str();
}

}  // namespace

int main() {
  const auto requests =
      static_cast<std::size_t>(util::env_long("TAGLETS_SERVE_REQUESTS", 3000));
  const auto clients =
      static_cast<std::size_t>(util::env_long("TAGLETS_SERVE_CLIENTS", 16));
  const auto max_batch =
      static_cast<std::size_t>(util::env_long("TAGLETS_SERVE_BATCH", 8));
  const auto repeats = static_cast<std::size_t>(
      std::max(1L, util::env_long("TAGLETS_SERVE_REPEATS", 2)));

  // Pin the shared pool to serial: worker threads are the only
  // parallelism under test (see header comment).
  util::Parallel serial_pool(1);
  util::Parallel* previous = util::Parallel::exchange_global(&serial_pool);

  ensemble::ServableModel model = make_model();
  util::Rng rng(5);
  std::vector<Tensor> inputs;
  inputs.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    Tensor x = Tensor::zeros(256);
    for (float& v : x.data()) v = static_cast<float>(rng.normal());
    inputs.push_back(std::move(x));
  }

  std::cout << "##### serve_loadgen #####\n"
            << "requests=" << requests << " clients=" << clients
            << " max_batch=" << max_batch << " repeats=" << repeats << "\n";

  const std::array<std::size_t, 3> worker_settings{1, 2, 4};
  struct PrecisionSweep {
    const char* name;
    ensemble::Precision precision;
  };
  const std::array<PrecisionSweep, 2> sweeps{
      {{"float32", ensemble::Precision::kFloat32},
       {"int8", ensemble::Precision::kInt8}}};
  std::array<RunResult, 3> best{};  // float32 results drive the gate below
  std::vector<std::string> json_lines;
  bool lost = false;
  for (const PrecisionSweep& sweep : sweeps) {
    model.set_precision(sweep.precision);
    for (std::size_t w = 0; w < worker_settings.size(); ++w) {
      RunResult best_run{};
      for (std::size_t rep = 0; rep < repeats; ++rep) {
        const RunResult r = run_once(model, worker_settings[w], requests,
                                     clients, max_batch, inputs);
        if (r.responded != requests || r.ok != requests) lost = true;
        if (r.throughput_rps > best_run.throughput_rps) best_run = r;
      }
      if (sweep.precision == ensemble::Precision::kFloat32) {
        best[w] = best_run;
      }
      std::cout << "precision=" << sweep.name
                << " workers=" << worker_settings[w]
                << " throughput=" << best_run.throughput_rps << " req/s p50="
                << best_run.p50_ms << "ms p99=" << best_run.p99_ms
                << "ms mean_batch=" << best_run.mean_batch << "\n";
      json_lines.push_back(json_line(sweep.name, worker_settings[w], requests,
                                     clients, max_batch, best_run));
      std::cout << json_lines.back() << "\n";
    }
  }
  model.set_precision(ensemble::Precision::kFloat32);

  util::Parallel::exchange_global(previous);

  const std::string json_out = util::env_string("TAGLETS_SERVE_JSON_OUT", "");
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << "{\"bench\":\"serve_loadgen\",\"results\":[\n";
    for (std::size_t i = 0; i < json_lines.size(); ++i) {
      out << "  " << json_lines[i] << (i + 1 < json_lines.size() ? "," : "")
          << "\n";
    }
    out << "]}\n";
    std::cout << "[serve_loadgen] wrote " << json_out << "\n";
  }

  // Registry snapshot (cumulative over the whole sweep) alongside the
  // per-setting JSON lines: one metrics surface for serve + pipeline.
  std::cout << "{\"bench\":\"serve_loadgen\",\"metrics\":"
            << obs::MetricsRegistry::global().to_json() << "}\n";

  if (lost) {
    std::cerr << "FAIL: lost or non-ok responses under closed-loop load\n";
    return 1;
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  if (!(best[2].throughput_rps > best[0].throughput_rps)) {
    if (hardware >= 4) {
      std::cerr << "FAIL: 4 workers (" << best[2].throughput_rps
                << " req/s) not faster than 1 worker ("
                << best[0].throughput_rps << " req/s)\n";
      return 1;
    }
    std::cout << "[serve_loadgen] scaling assertion skipped: only " << hardware
              << " hardware thread(s); 4 workers cannot exceed 1\n";
    return 0;
  }
  std::cout << "[serve_loadgen] 4-worker speedup over 1 worker: "
            << best[2].throughput_rps / best[0].throughput_rps << "x\n";
  return 0;
}
