// Figure 5: improvement of the ensemble and the distilled end model over
// the average module accuracy on OfficeHome-Product, per shots and
// pruning level (ResNet-50 backbone). The paper reports an ensemble
// gain of at least ~7 points over the module mean in all scenarios, and
// end-model deltas between -5 and +4 points around the ensemble.
#include "bench_common.hpp"

int main() {
  using namespace taglets;
  util::Timer timer;
  bench::print_banner("Figure 5: ensemble / end-model gains (OH-Product)");

  eval::Harness harness = bench::make_harness();
  std::cout << eval::render_ensemble_gain_figure(
                   harness, synth::officehome_product_spec(), /*split=*/0)
            << "\n";
  bench::print_elapsed(timer);
  return 0;
}
