// Tables 3 and 4: the OfficeHome experiments repeated on splits 1 and 2
// (Appendix A.6). The paper's finding is that the split-0 trends are
// consistent across splits.
#include "bench_common.hpp"

int main() {
  using namespace taglets;
  util::Timer timer;
  bench::print_banner("Tables 3-4: OfficeHome splits 1 and 2");

  eval::Harness harness = bench::make_harness();
  for (std::size_t split : {1u, 2u}) {
    eval::TableRequest request;
    request.title = split == 1 ? "Table 3 (split 1)" : "Table 4 (split 2)";
    request.datasets = {synth::officehome_product_spec(),
                        synth::officehome_clipart_spec()};
    request.shots = {1, 5, 20};
    request.split = split;
    request.rows = eval::standard_table_rows();
    std::cout << eval::render_accuracy_table(harness, request) << "\n"
              << std::flush;
  }
  bench::print_elapsed(timer);
  return 0;
}
