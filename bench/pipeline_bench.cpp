// Pipeline scheduling bench: wall-clock of the serial stage sequence
// vs the task-graph plan on the same task, verifying along the way
// that the two plans produce a bitwise-identical end model (the
// scheduler's core guarantee — see src/taglets/task_graph.hpp).
//
// The graph plan's headline overlap: the backbone fetch runs alongside
// SCADS selection, and the zero-shot module (which reads only the
// engine and the graph embeddings) trains while selection is still in
// flight; the SCADS-consuming modules then fan out concurrently. On a
// machine with >= 4 hardware threads the graph plan must not be slower
// than serial (small tolerance for scheduler overhead); on smaller
// machines the ratio is reported but not enforced.
//
// Knobs (environment, like every other bench):
//   TAGLETS_PIPELINE_REPEATS   runs per plan, best kept   (default 2)
//   TAGLETS_PIPELINE_SHOTS     shots per class            (default 2)
//   TAGLETS_PIPELINE_SCALE     epoch_scale                (default 0.5)
//   TAGLETS_PIPELINE_JSON_OUT  write the JSON snapshot here
//
// Emits one JSON object ({"bench":"pipeline_bench", "serial_seconds":...,
// "graph_seconds":..., "speedup":..., "bitwise_identical":...}) tracked
// across PRs as BENCH_pipeline.json. Exits non-zero if the plans
// diverge bitwise, or if the graph plan loses on >= 4 threads.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "modules/zsl_kg.hpp"
#include "synth/tasks.hpp"
#include "taglets/controller.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace {

using namespace taglets;
using tensor::Tensor;

// Miniature world mirroring tests/test_support.hpp: the same structure
// as the paper's world at a size where a pipeline run takes seconds.
synth::WorldConfig bench_world_config() {
  synth::WorldConfig config = synth::default_world_config(7);
  config.concept_count = 300;
  config.cross_edges = 600;
  config.render_regions = 8;
  return config;
}

backbone::PretrainConfig bench_pretrain_config() {
  backbone::PretrainConfig config;
  config.hidden_dim = 64;
  config.feature_dim = 24;
  config.images_per_class = 8;
  config.epochs = 25;
  return config;
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.data()[i] != b.data()[i]) return false;
  }
  return true;
}

}  // namespace

int main() {
  const long repeats = std::max(1L, util::env_long("TAGLETS_PIPELINE_REPEATS", 2));
  const long shots = std::max(1L, util::env_long("TAGLETS_PIPELINE_SHOTS", 2));
  const std::string scale_raw =
      util::env_string("TAGLETS_PIPELINE_SCALE", "0.5");
  const double scale = std::strtod(scale_raw.c_str(), nullptr);
  const std::size_t threads = util::Parallel::global().threads();

  std::cout << "##### pipeline_bench #####\n"
            << "repeats=" << repeats << " shots=" << shots
            << " epoch_scale=" << scale << " threads=" << threads << "\n"
            << std::flush;

  synth::World world(bench_world_config());
  backbone::Zoo zoo(&world, bench_pretrain_config(), std::string{});
  scads::Scads scads(world.graph(), world.taxonomy(),
                     world.scads_embeddings());
  {
    util::Rng rng(1234);
    scads.install_dataset(
        world.make_auxiliary_corpus(world.auxiliary_concepts(), 10, rng));
  }
  modules::ZslKgEngine::Config zsl_config;
  zsl_config.epochs = 20;
  zsl_config.val_classes = 10;
  modules::ZslKgEngine engine(zoo, zsl_config);

  synth::TaskSpec spec = synth::fmd_spec();
  spec.images_per_class = 30;
  synth::Dataset pool = synth::build_task_pool(world, spec, 11);
  const synth::FewShotTask task = synth::make_few_shot_task(
      pool, static_cast<std::size_t>(shots), spec.test_per_class, 101);

  Controller controller(&scads, &zoo, &engine);
  SystemConfig config;
  config.train_seed = 17;
  config.epoch_scale = scale;

  // Warm the zoo outside the timed region: pretraining cost is shared
  // by both plans and would otherwise be charged to whichever runs
  // first.
  zoo.get(config.backbone);
  zoo.zsl_reference();

  auto time_plan = [&](PipelineMode mode, std::optional<SystemResult>* out) {
    double best = 1e300;
    for (long r = 0; r < repeats; ++r) {
      SystemConfig run_config = config;
      run_config.pipeline = mode;
      util::Timer timer;
      SystemResult result = controller.run(task, run_config);
      best = std::min(best, timer.elapsed_seconds());
      if (!out->has_value()) *out = std::move(result);
    }
    return best;
  };

  std::optional<SystemResult> serial_result, graph_result;
  const double serial_seconds = time_plan(PipelineMode::kSerial,
                                          &serial_result);
  const double graph_seconds = time_plan(PipelineMode::kGraph, &graph_result);

  const Tensor serial_logits =
      serial_result->end_model.model().logits(task.test_inputs, false);
  const Tensor graph_logits =
      graph_result->end_model.model().logits(task.test_inputs, false);
  const bool identical =
      bitwise_equal(serial_logits, graph_logits) &&
      bitwise_equal(serial_result->pseudo_labels, graph_result->pseudo_labels);

  const double speedup =
      graph_seconds > 0.0 ? serial_seconds / graph_seconds : 0.0;
  std::cout << "serial " << serial_seconds << "s, graph " << graph_seconds
            << "s (speedup " << speedup << "x), bitwise "
            << (identical ? "identical" : "DIVERGED") << "\n";

  std::ostringstream json;
  json << "{\"bench\":\"pipeline_bench\",\"shots\":" << shots
       << ",\"epoch_scale\":" << scale << ",\"repeats\":" << repeats
       << ",\"modules\":" << config.module_names.size()
       << ",\"serial_seconds\":" << serial_seconds
       << ",\"graph_seconds\":" << graph_seconds << ",\"speedup\":" << speedup
       << ",\"bitwise_identical\":" << (identical ? "true" : "false") << "}";
  const std::string json_out =
      util::env_string("TAGLETS_PIPELINE_JSON_OUT", "");
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << json.str() << "\n";
    std::cout << "[pipeline_bench] wrote " << json_out << "\n";
  }
  std::cout << json.str() << "\n";

  if (!identical) {
    std::cerr << "[pipeline_bench] FAIL: plans are not bitwise identical\n";
    return 1;
  }
  // Scheduler-overhead gate: on a parallel machine the graph plan must
  // win (or tie within 5%). Reported but unenforced on < 4 threads,
  // where the DAG can only time-slice.
  if (threads >= 4 && graph_seconds > serial_seconds * 1.05) {
    std::cerr << "[pipeline_bench] FAIL: graph plan slower than serial ("
              << graph_seconds << "s vs " << serial_seconds << "s on "
              << threads << " threads)\n";
    return 1;
  }
  return 0;
}
