// Grocery-store assistive classifier (Section 4.1's fourth task): build
// a 42-class grocery recognizer with one labeled photo per class.
// Demonstrates the SCADS extensibility path from Example A.1: two target
// classes — oatghurt and soyghurt — do not exist in the knowledge graph,
// so the user adds novel concepts linked to existing ones (yoghurt,
// oat/soy milk) before running the system.
//
//   ./examples/grocery_store
#include <iostream>

#include "eval/lab.hpp"
#include "nn/trainer.hpp"
#include "scads/selection.hpp"
#include "tensor/ops.hpp"
#include "taglets/controller.hpp"

using namespace taglets;

int main() {
  // The lab already performs the novel-concept registration below when
  // it builds SCADS; rebuild a raw SCADS here to show the explicit flow.
  eval::Lab lab;
  synth::World& world = lab.world();

  scads::Scads scads(world.graph(), world.taxonomy(),
                     world.scads_embeddings());
  util::Rng aux_rng(99);
  scads.install_dataset(world.make_auxiliary_corpus(
      world.auxiliary_concepts(), 28, aux_rng));
  std::cout << "[scads] installed ImageNet-21k-S: " << scads.total_examples()
            << " examples over " << scads.concepts_with_data().size()
            << " concepts\n";

  // The grocery label set includes classes missing from the graph.
  for (const std::string& name : synth::grocery_oov_class_names()) {
    std::cout << "[scads] '" << name << "' in knowledge graph? "
              << (scads.find_concept(name) ? "yes" : "no") << "\n";
  }

  // Example A.1: create the new nodes and link them to characterizing
  // concepts; SCADS approximates their embeddings from the links.
  using graph::Relation;
  scads.add_novel_concept("oatghurt", {{"yoghurt", Relation::kRelatedTo},
                                       {"oat_milk", Relation::kRelatedTo},
                                       {"milk", Relation::kIsA}});
  scads.add_novel_concept("soyghurt", {{"yoghurt", Relation::kRelatedTo},
                                       {"soy_milk", Relation::kRelatedTo},
                                       {"milk", Relation::kIsA}});
  std::cout << "[scads] novel concepts added and linked\n";

  // What does SCADS consider related to oatghurt now?
  auto hits = scads::related_concepts(scads, "oatghurt", 3, {});
  std::cout << "[scads] top related concepts for 'oatghurt':";
  for (const auto& hit : hits) {
    std::cout << " " << scads.graph().name(hit.node) << " ("
              << hit.similarity << ")";
  }
  std::cout << "\n";

  // Build the 1-shot task and run the full system.
  synth::FewShotTask task = lab.task(synth::grocery_spec(), /*shots=*/1,
                                     /*split=*/0);
  Controller controller(&scads, &lab.zoo(), &lab.zsl_engine());
  SystemConfig config;
  config.train_seed = 7;
  SystemResult result = controller.run(task, config);

  tensor::Tensor logits =
      result.end_model.model().logits(task.test_inputs, false);
  std::cout << "[result] 1-shot grocery accuracy: "
            << 100.0 * nn::accuracy(logits, task.test_labels) << "% over "
            << task.num_classes() << " classes (chance "
            << 100.0 / task.num_classes() << "%)\n";

  // Accuracy on just the graph-missing classes, to show the novel
  // concepts are genuinely served.
  std::size_t oov_total = 0, oov_correct = 0;
  const auto predictions = tensor::argmax_rows(logits);
  for (std::size_t i = 0; i < task.test_labels.size(); ++i) {
    const std::string& name = task.class_names[task.test_labels[i]];
    if (name == "oatghurt" || name == "soyghurt") {
      ++oov_total;
      if (predictions[i] == task.test_labels[i]) ++oov_correct;
    }
  }
  std::cout << "[result] accuracy on the two graph-missing classes: "
            << oov_correct << "/" << oov_total << "\n";
  return 0;
}
