// Quickstart: build the lab environment (synthetic world + SCADS +
// pretrained backbones), run TAGLETS on a 1-shot material-recognition
// task, and compare the servable end model against plain fine-tuning.
//
//   ./examples/quickstart
#include <iostream>

#include "baselines/finetune.hpp"
#include "eval/lab.hpp"
#include "nn/trainer.hpp"
#include "taglets/controller.hpp"
#include "util/timer.hpp"

using namespace taglets;

int main() {
  util::Timer total;

  // 1. The environment: knowledge graph, auxiliary data, backbones.
  util::Timer t_lab;
  eval::Lab lab;
  std::cout << "[lab] built in " << t_lab.elapsed_seconds() << "s\n";

  // 2. A 1-shot task: classify surface materials (10 classes).
  synth::FewShotTask task = lab.task(synth::fmd_spec(), /*shots=*/1,
                                     /*split=*/0);
  std::cout << "[task] " << task.dataset_name << ": "
            << task.labeled_labels.size() << " labeled, "
            << task.unlabeled_inputs.rows() << " unlabeled, "
            << task.test_labels.size() << " test examples\n";

  // 3. Run TAGLETS end to end.
  util::Timer t_run;
  Controller controller(&lab.scads(), &lab.zoo(), &lab.zsl_engine());
  SystemConfig config;
  config.train_seed = 42;
  SystemResult result = controller.run(task, config);
  std::cout << "[taglets] trained " << result.taglets.size()
            << " taglets + end model in " << t_run.elapsed_seconds() << "s\n";
  std::cout << "[taglets] |R| = " << result.selection.data.size()
            << " selected auxiliary examples across "
            << result.selection.intermediate_classes() << " concepts\n";

  // 4. Evaluate the servable model and each taglet.
  tensor::Tensor logits =
      result.end_model.model().logits(task.test_inputs, false);
  const double taglets_acc = 100.0 * nn::accuracy(logits, task.test_labels);
  std::cout << "[accuracy] TAGLETS end model: " << taglets_acc << "%\n";
  for (auto& taglet : result.taglets) {
    const double acc = 100.0 * nn::evaluate_accuracy(
                                   taglet.model(), task.test_inputs,
                                   task.test_labels);
    std::cout << "[accuracy]   taglet " << taglet.name() << ": " << acc
              << "%\n";
  }

  // 5. Baseline for contrast: fine-tune the same backbone on the shots.
  baselines::FineTune fine_tune;
  nn::Classifier ft = fine_tune.train(
      task, lab.zoo().get(backbone::Kind::kRn50S), /*seed=*/42, 1.0);
  const double ft_acc =
      100.0 * nn::evaluate_accuracy(ft, task.test_inputs, task.test_labels);
  std::cout << "[accuracy] fine-tuning baseline: " << ft_acc << "%\n";

  // 6. The end model is a single servable classifier.
  std::cout << "[serving] end model parameters: "
            << result.end_model.parameter_count() << "\n";
  tensor::Tensor example = task.test_inputs.row_copy(0);
  std::cout << "[serving] example prediction: "
            << result.end_model.predict_name(example) << " (truth: "
            << task.class_names[task.test_labels[0]] << ")\n";
  std::cout << "[serving] latency: " << result.end_model.latency().summary()
            << "\n";

  std::cout << "[done] total " << total.elapsed_seconds() << "s\n";
  return 0;
}
