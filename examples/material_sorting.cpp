// Waste-sorting material recognizer (the FMD use case the paper
// motivates: "support waste sorting and recycling"). Shows the
// production-facing side of TAGLETS: train once, save the servable end
// model to disk, reload it in a "serving process", and measure
// single-example latency against an SLA budget.
//
//   ./examples/material_sorting
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "ensemble/servable.hpp"
#include "eval/lab.hpp"
#include "nn/trainer.hpp"
#include "taglets/controller.hpp"

using namespace taglets;

int main() {
  eval::Lab lab;

  // 5 labeled photos per material class; the rest of the pool unlabeled.
  synth::FewShotTask task = lab.task(synth::fmd_spec(), /*shots=*/5,
                                     /*split=*/0);
  std::cout << "[task] " << task.num_classes() << " material classes, "
            << task.labeled_labels.size() << " labeled photos, "
            << task.unlabeled_inputs.rows() << " unlabeled\n";

  Controller controller(&lab.scads(), &lab.zoo(), &lab.zsl_engine());
  SystemConfig config;
  config.train_seed = 3;
  SystemResult result = controller.run(task, config);
  std::cout << "[train] system trained in " << result.train_seconds << "s\n";

  // Persist the distilled model — the artifact a serving fleet deploys.
  const std::string path =
      (std::filesystem::temp_directory_path() / "material_sorter.bin")
          .string();
  result.end_model.save(path);
  std::cout << "[deploy] saved servable model ("
            << std::filesystem::file_size(path) << " bytes, "
            << result.end_model.parameter_count() << " parameters) to "
            << path << "\n";

  // "Serving process": reload and classify a stream of items.
  ensemble::ServableModel server = ensemble::ServableModel::load(path);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < task.test_labels.size(); ++i) {
    tensor::Tensor item = task.test_inputs.row_copy(i);
    const std::size_t predicted = server.predict(item);
    if (predicted == task.test_labels[i]) ++correct;
  }
  std::cout << "[serve] accuracy over " << task.test_labels.size()
            << " items: "
            << 100.0 * static_cast<double>(correct) /
                   static_cast<double>(task.test_labels.size())
            << "%\n";
  std::cout << "[serve] latency: " << server.latency().summary() << "\n";
  const double p99 = server.latency().percentile_ms(99);
  std::cout << "[serve] SLA check (p99 < 5ms): "
            << (p99 < 5.0 ? "PASS" : "FAIL") << "\n";

  // Show a few individual decisions.
  for (std::size_t i = 0; i < 5; ++i) {
    tensor::Tensor item = task.test_inputs.row_copy(i);
    std::cout << "[serve] item " << i << ": predicted '"
              << server.predict_name(item) << "', truth '"
              << task.class_names[task.test_labels[i]] << "'\n";
  }
  std::filesystem::remove(path);
  return 0;
}
