// Extending TAGLETS with a custom module (Section 3.2: "This modular
// framework is extensible, as other methods can be incorporated on top
// of the ones we develop here"). We register a user-defined k-nearest-
// neighbour module that classifies directly in feature space with no
// training, and run a six-module TAGLETS: the paper's four, the library-
// provided "prototype" extension, and our custom "knn".
//
//   ./examples/custom_module
#include <algorithm>
#include <iostream>

#include "ensemble/ensemble.hpp"
#include "eval/lab.hpp"
#include "modules/registry.hpp"
#include "nn/trainer.hpp"
#include "taglets/controller.hpp"
#include "tensor/ops.hpp"

using namespace taglets;

namespace {

/// k-NN taglet over backbone features of the labeled shots. Builds its
/// "model" as a linear head whose logits are similarity-weighted votes —
/// a deliberately simple example of the Module interface: consume the
/// context, return a Taglet.
class KnnModule : public modules::Module {
 public:
  explicit KnnModule(std::size_t k = 3) : k_(k) {}
  std::string name() const override { return "knn"; }

  modules::Taglet train(const modules::ModuleContext& context) const override {
    const auto& task = *context.task;
    const auto& backbone = *context.backbone;
    nn::Sequential encoder = backbone.encoder;

    // Memorize normalized features of the labeled shots; the "head" is
    // the matrix of those features, one column per shot, followed by a
    // vote-pooling trick: since our Classifier head must be linear, we
    // approximate k-NN with a class-mean similarity head over the top
    // shots (equivalent to 1-NN against class centroids of unit-norm
    // features). Good enough to add ensemble diversity.
    tensor::Tensor features = encoder.forward(task.labeled_inputs, false);
    tensor::normalize_rows(features);
    tensor::Tensor weight =
        tensor::Tensor::zeros(backbone.feature_dim, task.num_classes());
    std::vector<std::size_t> counts(task.num_classes(), 0);
    for (std::size_t i = 0; i < task.labeled_labels.size(); ++i) {
      auto src = features.row(i);
      const std::size_t c = task.labeled_labels[i];
      for (std::size_t d = 0; d < src.size(); ++d) {
        weight.at(d, c) += src[d];
      }
      counts[c]++;
    }
    for (std::size_t c = 0; c < task.num_classes(); ++c) {
      if (counts[c] == 0) continue;
      for (std::size_t d = 0; d < backbone.feature_dim; ++d) {
        weight.at(d, c) /= static_cast<float>(counts[c]);
      }
    }
    return modules::Taglet(
        name(), nn::Classifier(encoder,
                               nn::Linear(std::move(weight),
                                          tensor::Tensor::zeros(
                                              task.num_classes()))));
  }

 private:
  std::size_t k_;
};

}  // namespace

int main() {
  eval::Lab lab;
  synth::FewShotTask task = lab.task(synth::fmd_spec(), /*shots=*/1,
                                     /*split=*/0);

  auto registry = modules::ModuleRegistry::with_builtins();
  registry.register_module("knn", [] { return std::make_unique<KnnModule>(); });
  std::cout << "[registry] available modules:";
  for (const auto& name : registry.available()) std::cout << " " << name;
  std::cout << "\n";

  Controller controller(&lab.scads(), &lab.zoo(), &lab.zsl_engine(),
                        &registry);
  SystemConfig config;
  config.train_seed = 21;
  config.module_names = {"transfer", "multitask", "fixmatch",
                         "zsl-kg",   "prototype", "knn"};
  SystemResult result = controller.run(task, config);

  std::cout << "[modules] individual taglet accuracies:\n";
  for (auto& taglet : result.taglets) {
    const double acc = 100.0 * nn::evaluate_accuracy(
                                   taglet.model(), task.test_inputs,
                                   task.test_labels);
    std::cout << "  " << taglet.name() << ": " << acc << "%\n";
  }
  const double ens = 100.0 * ensemble::ensemble_accuracy(
                                 result.taglets, task.test_inputs,
                                 task.test_labels);
  tensor::Tensor logits =
      result.end_model.model().logits(task.test_inputs, false);
  std::cout << "[system] 6-module ensemble: " << ens << "%\n"
            << "[system] distilled end model: "
            << 100.0 * nn::accuracy(logits, task.test_labels) << "%\n";
  return 0;
}
