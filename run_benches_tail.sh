#!/bin/bash
# Remaining paper artifacts: Figure 7 + budget ablation at full fidelity,
# split-tables 3-6 and figures 8-13 in FAST mode (single-core wall-clock;
# see EXPERIMENTS.md).
cd /root/repo
export TAGLETS_SEEDS=2
./build/bench/fig7_pruning_retrieval
./build/bench/ablation_budget
export TAGLETS_FAST=1
export TAGLETS_SPLITS=1
./build/bench/table3_4_officehome_splits
./build/bench/table5_6_grocery_fmd_splits
./build/bench/fig8_10_module_pruning_all
./build/bench/fig11_13_ensemble_gain_all
