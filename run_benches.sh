#!/bin/bash
# Regenerates every paper table and figure (see DESIGN.md experiment
# index). Environment knobs:
#   TAGLETS_SEEDS  (default 3; the recorded bench_output.txt used 2)
#   TAGLETS_SPLITS (default 3; the recorded run used 1 for figs 8-13)
#   TAGLETS_FAST=1 to shrink all training schedules ~3x
# On a single core a full-fidelity run takes a few hours; the recorded
# run used seeds=2 and FAST mode for the split-table tail (Tables 3-6,
# Figures 8-13), as documented in EXPERIMENTS.md.
cd "$(dirname "$0")"
for b in build/bench/table1_officehome build/bench/table2_grocery_fmd \
         build/bench/fig4_module_pruning build/bench/fig5_ensemble_gain \
         build/bench/fig6_module_ablation build/bench/fig7_pruning_retrieval \
         build/bench/micro_core build/bench/ablation_design \
         build/bench/ablation_budget \
         build/bench/table3_4_officehome_splits \
         build/bench/table5_6_grocery_fmd_splits \
         build/bench/fig8_10_module_pruning_all \
         build/bench/fig11_13_ensemble_gain_all; do
  $b
done

# Serving benches: each emits a committed BENCH_*.json snapshot
# tracked across PRs (in-process server, micro kernels, the fleet
# drill: 3 shard processes, one SIGKILLed mid-run, and the pipeline
# scheduling A/B: serial stages vs the task-graph plan, bitwise-checked).
TAGLETS_PIPELINE_JSON_OUT=BENCH_pipeline.json build/bench/pipeline_bench
TAGLETS_SERVE_JSON_OUT=BENCH_serve.json build/bench/serve_loadgen
build/bench/micro_core --benchmark_out=BENCH_micro_core.json \
  --benchmark_out_format=json
TAGLETS_FLEET_JSON_OUT=BENCH_fleet.json build/bench/fleet_loadgen

# Stamp every snapshot with its provenance — the numbers are
# meaningless in a trajectory without knowing what produced them.
sha=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
dirty=$(git diff --quiet 2>/dev/null || echo "-dirty")
backend=$(build/tools/taglets_run --backend-info | head -1 | sed 's/^tensor backend: //')
threads=${TAGLETS_THREADS:-$(nproc)}
for f in BENCH_*.json; do
  python3 - "$f" "$sha$dirty" "$backend" "$threads" <<'EOF'
import json, sys
path, sha, backend, threads = sys.argv[1:5]
with open(path) as fh:
    doc = json.load(fh)
doc["provenance"] = {
    "git_sha": sha,
    "tensor_backend": backend,
    "threads": int(threads),
}
with open(path, "w") as fh:
    json.dump(doc, fh, indent=1 if path.endswith("micro_core.json") else None)
    fh.write("\n")
EOF
done
echo "[run_benches] stamped BENCH_*.json with git_sha=$sha$dirty backend=$backend threads=$threads"
