#!/bin/bash
# Regenerates every paper table and figure (see DESIGN.md experiment
# index). Environment knobs:
#   TAGLETS_SEEDS  (default 3; the recorded bench_output.txt used 2)
#   TAGLETS_SPLITS (default 3; the recorded run used 1 for figs 8-13)
#   TAGLETS_FAST=1 to shrink all training schedules ~3x
# On a single core a full-fidelity run takes a few hours; the recorded
# run used seeds=2 and FAST mode for the split-table tail (Tables 3-6,
# Figures 8-13), as documented in EXPERIMENTS.md.
cd "$(dirname "$0")"
for b in build/bench/table1_officehome build/bench/table2_grocery_fmd \
         build/bench/fig4_module_pruning build/bench/fig5_ensemble_gain \
         build/bench/fig6_module_ablation build/bench/fig7_pruning_retrieval \
         build/bench/micro_core build/bench/ablation_design \
         build/bench/ablation_budget \
         build/bench/table3_4_officehome_splits \
         build/bench/table5_6_grocery_fmd_splits \
         build/bench/fig8_10_module_pruning_all \
         build/bench/fig11_13_ensemble_gain_all; do
  $b
done

# Fleet serving bench: 3 shard processes, one SIGKILLed mid-run.
# Emits the committed BENCH_fleet.json snapshot (throughput, latency
# percentiles, failover recovery time) tracked across PRs.
TAGLETS_FLEET_JSON_OUT=BENCH_fleet.json build/bench/fleet_loadgen
